//! Low-perturbation event logging for the real-thread backend.
//!
//! Physical schedules are the one thing the deterministic backends cannot
//! produce, and the easiest thing for an instrument to destroy: a shared
//! log behind a lock would serialise the very contention we run real
//! threads to observe. This module follows the ekotrace/RaceBuffer design
//! instead — each thread appends fixed-stride frames to its **own**
//! unshared [`ThreadLog`] (a plain `Vec` push: no locks, no cross-thread
//! cache traffic), and the only shared state is one global `AtomicU64`
//! sequence counter whose `fetch_add` happens *inside the critical section
//! the instruction already holds*. The per-apply perturbation budget is
//! therefore one uncontended-in-the-common-case atomic increment plus one
//! thread-local push.
//!
//! Because the stamp is taken under the cell lock(s), any two instructions
//! on a common location carry sequence numbers in their application order,
//! and instructions on disjoint locations commute — so sorting all threads'
//! frames by sequence number ([`merge_logs`]) yields a *linearization* of
//! the run that [`cbh_model::CompactTrace`] validates and
//! `cbh_sim::replay_schedule` re-executes deterministically. The replay
//! must agree with the threaded run bit for bit; the conformance fuzzer's
//! `threaded-trace` backend asserts exactly that on every scenario.

use cbh_model::trace::{CompactTrace, OpKind, TraceError, TraceFrame};
use cbh_sim::ConsensusReport;

/// One thread's private, lock-free event log.
///
/// Created by the capture-enabled run loop and filled by
/// [`SharedMemory::apply_logged`](crate::SharedMemory::apply_logged) — one
/// frame per *successful* instruction application, stamped with the global
/// merge sequence number drawn inside that instruction's critical section.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadLog {
    pid: u32,
    frames: Vec<TraceFrame>,
}

impl ThreadLog {
    /// An empty log for process `pid`.
    ///
    /// # Panics
    ///
    /// Panics if `pid` exceeds `u32::MAX` — process counts are tiny.
    pub fn new(pid: usize) -> Self {
        ThreadLog {
            pid: u32::try_from(pid).expect("pid fits the u32 wire format"),
            frames: Vec::new(),
        }
    }

    /// Records one applied instruction. `seq` is the global stamp taken
    /// inside the instruction's critical section; the per-thread step index
    /// is implicit (this log's length so far).
    ///
    /// # Panics
    ///
    /// Panics if `seq` or `loc` exceed `u32::MAX`. Capture is bounded by
    /// per-thread step budgets orders of magnitude below that, so this is
    /// unreachable in practice — and decoding stays total regardless
    /// ([`TraceError`] covers every malformed byte string).
    pub fn record(&mut self, seq: u64, kind: OpKind, loc: usize) {
        let step = u32::try_from(self.frames.len()).expect("step fits the u32 wire format");
        self.frames.push(TraceFrame {
            seq: u32::try_from(seq).expect("seq fits the u32 wire format"),
            pid: self.pid,
            kind,
            loc: u32::try_from(loc).expect("loc fits the u32 wire format"),
            step,
        });
    }

    /// Frames recorded so far.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }
}

/// Merges per-thread logs into one validated [`CompactTrace`].
///
/// Sorting by the globally-unique sequence stamp recovers the linearization;
/// [`CompactTrace::from_frames`] then re-checks every invariant replay
/// relies on (gapless sequence numbers, pids in range, per-thread program
/// order), so a capture bug surfaces here as a typed error instead of a
/// baffling replay divergence downstream.
///
/// # Errors
///
/// Any [`TraceError`] from trace validation — impossible for logs produced
/// by [`SharedMemory::apply_logged`](crate::SharedMemory::apply_logged), but
/// checked rather than trusted.
pub fn merge_logs(
    n: usize,
    logs: impl IntoIterator<Item = ThreadLog>,
) -> Result<CompactTrace, TraceError> {
    let mut frames: Vec<TraceFrame> = logs.into_iter().flat_map(|log| log.frames).collect();
    frames.sort_unstable_by_key(|f| f.seq);
    CompactTrace::from_frames(n, frames)
}

/// The result of a capture-enabled threaded run
/// ([`run_threaded_traced`](crate::run_threaded_traced)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceOutcome {
    /// Decisions and space usage, in the same shape as the simulator's.
    pub report: ConsensusReport,
    /// The merged, validated capture; `trace.schedule()` replayed through
    /// `cbh_sim::replay_schedule` must reproduce `report` exactly.
    pub trace: CompactTrace,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_recovers_the_interleaving_from_private_logs() {
        let mut a = ThreadLog::new(0);
        let mut b = ThreadLog::new(1);
        a.record(0, OpKind::Single, 0);
        b.record(1, OpKind::Single, 0);
        a.record(2, OpKind::MultiAssign, 3);
        let trace = merge_logs(2, [b, a]).unwrap();
        assert_eq!(trace.schedule().as_slice(), &[0, 1, 0]);
        assert_eq!(trace.frames()[2].kind, OpKind::MultiAssign);
        assert_eq!(trace.frames()[2].step, 1, "per-thread step index");
    }

    #[test]
    fn merge_rejects_inconsistent_logs() {
        let mut a = ThreadLog::new(0);
        a.record(1, OpKind::Single, 0); // stamp 0 missing: not a linearization
        assert_eq!(
            merge_logs(1, [a]),
            Err(TraceError::NonContiguousSeq { at: 0, seq: 1 })
        );
    }
}
