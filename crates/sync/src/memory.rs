//! Real-thread execution of protocol state machines.

use crate::compact_log::{merge_logs, ThreadLog, TraceOutcome};
use cbh_model::trace::{CompactTrace, OpKind};
use cbh_model::{
    Action, CellState, Instruction, MemorySpec, ModelError, Op, Process, Protocol, Value,
};
use cbh_sim::ConsensusReport;
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// A thread-safe shared memory implementing the model's atomic instructions.
///
/// Each location is a [`CellState`] behind its own mutex; one instruction =
/// one critical section, which realizes the model's atomicity for arbitrary
/// read-modify-write instructions. Multiple assignment locks its target
/// locations in ascending order (two-phase), so it is atomic and
/// deadlock-free.
///
/// Every *successful* application is stamped with a globally-unique
/// sequence number drawn inside the critical section, so capture-enabled
/// runs ([`run_threaded_traced`]) can merge per-thread logs into a
/// linearization of the physical schedule (see [`crate::compact_log`]).
pub struct SharedMemory {
    spec: MemorySpec,
    cells: RwLock<Vec<Arc<Mutex<CellState>>>>,
    growable: bool,
    /// What a location past the initial allocation starts as — taken from
    /// the spec so growth agrees with [`cbh_model::Memory`] exactly, default
    /// values and buffer capacities included.
    default_cell: CellState,
    touched: AtomicUsize,
    steps: AtomicU64,
    seq: AtomicU64,
}

impl SharedMemory {
    /// Builds the memory described by `spec`.
    pub fn new(spec: &MemorySpec) -> Self {
        // Reuse the deterministic memory to materialise initial cells.
        let proto = cbh_model::Memory::new(spec);
        let cells = (0..proto.len())
            .map(|i| Arc::new(Mutex::new(proto.cell(i).expect("in range").clone())))
            .collect();
        SharedMemory {
            spec: spec.clone(),
            cells: RwLock::new(cells),
            growable: spec.bounded_len().is_none(),
            default_cell: spec.grown_cell(),
            touched: AtomicUsize::new(0),
            steps: AtomicU64::new(0),
            seq: AtomicU64::new(0),
        }
    }

    /// Locations ever touched (the Table 1 space measure).
    pub fn touched(&self) -> usize {
        self.touched.load(Ordering::Relaxed)
    }

    /// Total instructions successfully applied.
    pub fn steps(&self) -> u64 {
        self.steps.load(Ordering::Relaxed)
    }

    fn cell(&self, loc: usize) -> Result<Arc<Mutex<CellState>>, ModelError> {
        {
            let cells = self.cells.read();
            if let Some(c) = cells.get(loc) {
                return Ok(Arc::clone(c));
            }
            if !self.growable {
                return Err(ModelError::OutOfBounds {
                    loc,
                    len: cells.len(),
                });
            }
        }
        let mut cells = self.cells.write();
        while cells.len() <= loc {
            cells.push(Arc::new(Mutex::new(self.default_cell.clone())));
        }
        Ok(Arc::clone(&cells[loc]))
    }

    fn touch(&self, loc: usize) {
        self.touched.fetch_max(loc + 1, Ordering::Relaxed);
    }

    /// Applies one atomic step.
    ///
    /// # Errors
    ///
    /// Same error conditions as [`cbh_model::Memory::apply`].
    pub fn apply(&self, op: &Op) -> Result<Value, ModelError> {
        self.apply_inner(op, None)
    }

    /// [`SharedMemory::apply`] with capture: a successful application also
    /// appends one frame to `log`, stamped inside the critical section.
    ///
    /// # Errors
    ///
    /// Same error conditions as [`SharedMemory::apply`]; a failed step
    /// records nothing.
    pub fn apply_logged(&self, op: &Op, log: &mut ThreadLog) -> Result<Value, ModelError> {
        self.apply_inner(op, Some(log))
    }

    fn apply_inner(&self, op: &Op, log: Option<&mut ThreadLog>) -> Result<Value, ModelError> {
        match op {
            Op::Single { loc, instr } => {
                self.spec.iset().check(instr)?;
                let cell = self.cell(*loc)?;
                let mut guard = cell.lock();
                let result = guard.apply(instr)?;
                // Stamp inside the critical section: per-location sequence
                // order equals application order, which is what makes the
                // merged log a linearization.
                let seq = self.seq.fetch_add(1, Ordering::Relaxed);
                if let Some(log) = log {
                    log.record(seq, OpKind::Single, *loc);
                }
                drop(guard);
                // Only successful applications count: a rejected instruction
                // is not a step of the run and must not inflate the space
                // measure (the model's report semantics).
                self.touch(*loc);
                self.steps.fetch_add(1, Ordering::Relaxed);
                Ok(result)
            }
            Op::MultiAssign(writes) => {
                for (i, (loc, _)) in writes.iter().enumerate() {
                    if writes[..i].iter().any(|(l, _)| l == loc) {
                        return Err(ModelError::DuplicateMultiAssignTarget { loc: *loc });
                    }
                }
                // Validate every target before mutating anything, in
                // declaration order, exactly as `cbh_model::Memory::apply`
                // does: a multiple assignment is only as uniform as the
                // write instruction it expands to.
                for (loc, v) in writes.iter() {
                    let probe = if self.spec.iset().buffer_capacity().is_some() {
                        Instruction::BufferWrite(v.clone())
                    } else {
                        Instruction::Write(v.clone())
                    };
                    self.spec.iset().check(&probe)?;
                    self.cell(*loc)?;
                }
                let mut sorted: Vec<(usize, &Value)> =
                    writes.iter().map(|(l, v)| (*l, v)).collect();
                sorted.sort_by_key(|(l, _)| *l);
                let cells: Vec<(Arc<Mutex<CellState>>, &Value)> = sorted
                    .iter()
                    .map(|(l, v)| Ok((self.cell(*l)?, *v)))
                    .collect::<Result<_, ModelError>>()?;
                // Lock in ascending location order: atomic and deadlock-free.
                let mut guards: Vec<_> = cells.iter().map(|(c, _)| c.lock()).collect();
                for ((_, v), guard) in cells.iter().zip(guards.iter_mut()) {
                    guard.multi_assign_write((*v).clone());
                }
                // One stamp for the whole assignment — it is one atomic step.
                // The frame's location is the first declared target (0 when
                // the write list is empty).
                let seq = self.seq.fetch_add(1, Ordering::Relaxed);
                if let Some(log) = log {
                    log.record(
                        seq,
                        OpKind::MultiAssign,
                        writes.first().map_or(0, |(l, _)| *l),
                    );
                }
                drop(guards);
                for (l, _) in &sorted {
                    self.touch(*l);
                }
                self.steps.fetch_add(1, Ordering::Relaxed);
                Ok(Value::Bot)
            }
        }
    }
}

/// The result of a threaded run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadOutcome {
    /// Decisions and space usage, in the same shape as the simulator's.
    pub report: ConsensusReport,
}

/// Runs every process of `protocol` on its own OS thread until all decide.
///
/// Obstruction-free protocols have no deterministic termination guarantee
/// under true concurrency, so each thread applies randomized exponential
/// backoff when it has gone a long time without deciding — the practical
/// analogue of the randomized wait-free transform in `cbh-random`.
///
/// # Errors
///
/// Returns the first [`ModelError`] any thread hits (the error halts the
/// whole run via a shared flag; siblings stop at their next step).
///
/// # Panics
///
/// Panics if `inputs.len() != protocol.n()`.
pub fn run_threaded<P>(protocol: &P, inputs: &[u64]) -> Result<ThreadOutcome, ModelError>
where
    P: Protocol,
    P::Proc: Send,
{
    run_threaded_bounded(protocol, inputs, u64::MAX)
}

/// [`run_threaded`] with a per-thread step budget: a thread that has applied
/// `max_steps` instructions without deciding gives up and leaves its decision
/// slot `None`.
///
/// This is the oracle-comparable form the conformance fuzzer runs: the
/// returned [`ConsensusReport`] can always be `check`ed for agreement and
/// validity among the processes that *did* decide (`check` ignores `None`
/// slots), and the budget guarantees the backend terminates on every
/// scenario, including adversarially contended ones.
///
/// # Errors
///
/// Returns the first [`ModelError`] any thread hits.
///
/// # Panics
///
/// Panics if `inputs.len() != protocol.n()`.
pub fn run_threaded_bounded<P>(
    protocol: &P,
    inputs: &[u64],
    max_steps: u64,
) -> Result<ThreadOutcome, ModelError>
where
    P: Protocol,
    P::Proc: Send,
{
    let (report, _) = run_threads(protocol, inputs, max_steps, false)?;
    Ok(ThreadOutcome { report })
}

/// [`run_threaded_bounded`] with trace capture: every thread keeps a private
/// [`ThreadLog`] of its successful applications, merged afterwards into a
/// [`CompactTrace`] linearization of the physical schedule.
///
/// The contract the conformance fuzzer enforces on every scenario:
/// `cbh_sim::replay_schedule(protocol, inputs, &outcome.trace.schedule())`
/// reproduces `outcome.report` — decisions, `steps`, `locations_allocated`
/// and `locations_touched` — bit for bit.
///
/// # Errors
///
/// Returns the first [`ModelError`] any thread hits (no trace is produced
/// for an erroring run).
///
/// # Panics
///
/// Panics if `inputs.len() != protocol.n()`.
pub fn run_threaded_traced<P>(
    protocol: &P,
    inputs: &[u64],
    max_steps: u64,
) -> Result<TraceOutcome, ModelError>
where
    P: Protocol,
    P::Proc: Send,
{
    let (report, trace) = run_threads(protocol, inputs, max_steps, true)?;
    Ok(TraceOutcome {
        report,
        trace: trace.expect("traced run produces a trace"),
    })
}

/// Shared engine behind the `run_threaded*` entry points.
fn run_threads<P>(
    protocol: &P,
    inputs: &[u64],
    max_steps: u64,
    traced: bool,
) -> Result<(ConsensusReport, Option<CompactTrace>), ModelError>
where
    P: Protocol,
    P::Proc: Send,
{
    assert_eq!(inputs.len(), protocol.n(), "one input per process");
    let memory = SharedMemory::new(&protocol.memory_spec());
    let decisions: Vec<Mutex<Option<u64>>> = (0..protocol.n()).map(|_| Mutex::new(None)).collect();
    let error: Mutex<Option<ModelError>> = Mutex::new(None);
    let halt = AtomicBool::new(false);

    let logs: Vec<Option<ThreadLog>> = std::thread::scope(|scope| {
        let handles: Vec<_> = inputs
            .iter()
            .enumerate()
            .map(|(pid, &input)| {
                let mut proc = protocol.spawn(pid, input);
                let memory = &memory;
                let decisions = &decisions;
                let error = &error;
                let halt = &halt;
                scope.spawn(move || {
                    let mut log = traced.then(|| ThreadLog::new(pid));
                    let mut since_backoff: u32 = 0;
                    let mut window_us: u64 = 1;
                    let mut taken: u64 = 0;
                    loop {
                        // A sibling's ModelError poisons the whole run:
                        // stop at the next step instead of burning the
                        // remaining budget on a result nobody will read.
                        if halt.load(Ordering::Relaxed) {
                            return log;
                        }
                        match proc.action() {
                            Action::Decide(v) => {
                                *decisions[pid].lock() = Some(v);
                                return log;
                            }
                            Action::Invoke(_) if taken >= max_steps => return log,
                            Action::Invoke(op) => match memory.apply_inner(&op, log.as_mut()) {
                                Ok(result) => {
                                    taken += 1;
                                    proc.absorb(result);
                                }
                                Err(e) => {
                                    let mut slot = error.lock();
                                    if slot.is_none() {
                                        *slot = Some(e);
                                    }
                                    halt.store(true, Ordering::Relaxed);
                                    return log;
                                }
                            },
                        }
                        since_backoff += 1;
                        if since_backoff > 256 {
                            // A long undecided stretch means heavy contention:
                            // back off for a pseudo-random, growing interval so
                            // somebody gets an effectively-solo window.
                            since_backoff = 0;
                            let jitter =
                                (pid as u64 + 1).wrapping_mul(0x9E37_79B9) % window_us.max(1);
                            std::thread::sleep(std::time::Duration::from_micros(
                                window_us + jitter,
                            ));
                            window_us = (window_us * 2).min(2_000);
                        }
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect()
    });

    if let Some(e) = error.into_inner() {
        return Err(e);
    }
    let decided: Vec<Option<u64>> = decisions.iter().map(|d| *d.lock()).collect();
    let locations_allocated = memory.cells.read().len();
    let report = ConsensusReport {
        decisions: decided,
        steps: memory.steps(),
        locations_allocated,
        locations_touched: memory.touched(),
    };
    let trace = if traced {
        Some(
            merge_logs(protocol.n(), logs.into_iter().flatten())
                .expect("logs stamped under the cell locks merge into a valid trace"),
        )
    } else {
        None
    };
    Ok((report, trace))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbh_core::cas::CasConsensus;
    use cbh_core::intro::FaaTasConsensus;
    use cbh_core::maxreg::MaxRegConsensus;
    use cbh_core::registers::register_consensus;
    use cbh_core::swap::SwapConsensus;
    use cbh_core::tracks::track_consensus;
    use cbh_core::util::BitWrite;
    use cbh_model::{Instruction, InstructionSet};
    use std::hash::{Hash, Hasher};

    #[test]
    fn shared_memory_applies_instructions_atomically() {
        let spec = MemorySpec::bounded(InstructionSet::FetchAndAdd, 1);
        let mem = SharedMemory::new(&spec);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        mem.apply(&Op::single(0, Instruction::fetch_and_add(1)))
                            .unwrap();
                    }
                });
            }
        });
        let total = mem
            .apply(&Op::single(0, Instruction::fetch_and_add(0)))
            .unwrap();
        assert_eq!(total, Value::int(4000), "no increment was lost");
    }

    #[test]
    fn shared_memory_rejects_uniformity_violations() {
        let mem = SharedMemory::new(&MemorySpec::bounded(InstructionSet::MaxRegister, 1));
        assert!(mem.apply(&Op::read(0)).is_err());
        // A rejected instruction is not a step of the run: the counters the
        // ConsensusReport is built from must stay untouched.
        assert_eq!(mem.steps(), 0, "failed ops do not count as steps");
        assert_eq!(mem.touched(), 0, "failed ops do not touch locations");
    }

    #[test]
    fn out_of_bounds_ops_leave_the_counters_untouched() {
        let mem = SharedMemory::new(&MemorySpec::bounded(InstructionSet::ReadWrite, 1));
        assert!(mem.apply(&Op::read(5)).is_err());
        assert_eq!((mem.steps(), mem.touched()), (0, 0));
    }

    #[test]
    fn grown_cells_start_from_the_specs_default() {
        // An unbounded memory with a non-zero default: location 5 has never
        // been written, so reading it must observe the spec's default — in
        // the threaded backend exactly as in the model.
        let spec = MemorySpec::unbounded(InstructionSet::ReadWrite).with_default(Value::int(7));
        let mem = SharedMemory::new(&spec);
        assert_eq!(mem.apply(&Op::read(5)).unwrap(), Value::int(7));
        let mut model = cbh_model::Memory::new(&spec);
        assert_eq!(
            model.apply(&Op::read(5)).unwrap(),
            Value::int(7),
            "threaded growth matches the model"
        );
    }

    #[test]
    fn multi_assign_is_atomic_under_threads() {
        let mem = SharedMemory::new(&MemorySpec::bounded(InstructionSet::ReadWrite, 2));
        std::thread::scope(|s| {
            for t in 0..4i64 {
                let mem = &mem;
                s.spawn(move || {
                    for _ in 0..500 {
                        mem.apply(&Op::multi_assign([
                            (0, Value::int(t)),
                            (1, Value::int(t)),
                        ]))
                        .unwrap();
                    }
                });
            }
        });
        // Both cells must agree: a torn multi-assign would leave them mixed.
        let a = mem.apply(&Op::read(0)).unwrap();
        let b = mem.apply(&Op::read(1)).unwrap();
        assert_eq!(a, b, "atomic multiple assignment never tears");
    }

    #[test]
    fn multi_assign_counts_one_step_and_validates_the_iset() {
        // One atomic multiple assignment is ONE step of the run (the
        // simulator's Machine counts it that way), touching every target.
        let mem = SharedMemory::new(&MemorySpec::bounded(InstructionSet::ReadWrite, 3));
        mem.apply(&Op::multi_assign([(0, Value::int(1)), (2, Value::int(2))]))
            .unwrap();
        assert_eq!(mem.steps(), 1, "one step per op, not one per location");
        assert_eq!(mem.touched(), 3);

        // And it is only as uniform as the write it expands to: a set
        // without write() must reject it with the model's exact error.
        let spec = MemorySpec::bounded(InstructionSet::ReadTas, 2);
        let mem = SharedMemory::new(&spec);
        let op = Op::multi_assign([(0, Value::int(1))]);
        let threaded_err = mem.apply(&op).unwrap_err();
        let model_err = cbh_model::Memory::new(&spec).apply(&op).unwrap_err();
        assert_eq!(threaded_err, model_err);
        assert_eq!((mem.steps(), mem.touched()), (0, 0));
    }

    /// A protocol whose pid 0 violates uniformity on its first step while
    /// every other process spins forever on reads, counting its spins in a
    /// shared counter. Used to pin prompt halting on error.
    #[derive(Clone, Debug)]
    struct Spinner {
        pid: usize,
        spins: Arc<AtomicU64>,
    }

    // The spin counter is instrumentation, not semantic state.
    impl PartialEq for Spinner {
        fn eq(&self, other: &Self) -> bool {
            self.pid == other.pid
        }
    }
    impl Eq for Spinner {}
    impl Hash for Spinner {
        fn hash<H: Hasher>(&self, state: &mut H) {
            self.pid.hash(state);
        }
    }

    impl Process for Spinner {
        fn action(&self) -> Action {
            if self.pid == 0 {
                // Not in ReadWrite: the first apply errors.
                Action::Invoke(Op::single(0, Instruction::TestAndSet))
            } else {
                Action::Invoke(Op::read(0))
            }
        }
        fn absorb(&mut self, _result: Value) {
            self.spins.fetch_add(1, Ordering::Relaxed);
        }
    }

    struct SpinnerProtocol {
        spins: Arc<AtomicU64>,
    }

    impl Protocol for SpinnerProtocol {
        type Proc = Spinner;
        fn name(&self) -> String {
            "halt-spinner".into()
        }
        fn n(&self) -> usize {
            3
        }
        fn domain(&self) -> u64 {
            2
        }
        fn memory_spec(&self) -> MemorySpec {
            MemorySpec::bounded(InstructionSet::ReadWrite, 1)
        }
        fn spawn(&self, pid: usize, _input: u64) -> Spinner {
            Spinner {
                pid,
                spins: Arc::clone(&self.spins),
            }
        }
    }

    #[test]
    fn a_model_error_halts_sibling_threads_promptly() {
        let spins = Arc::new(AtomicU64::new(0));
        let protocol = SpinnerProtocol {
            spins: Arc::clone(&spins),
        };
        let result = run_threaded_bounded(&protocol, &[0, 0, 0], 200_000);
        assert!(result.is_err(), "pid 0's uniformity violation aborts the run");
        // Without the halt flag the two spinners would burn their entire
        // budgets (400_000 spins total); with it they stop within the
        // error's propagation latency — backoff sleeps bound the worst case
        // well under half a budget.
        let total = spins.load(Ordering::Relaxed);
        assert!(total < 100_000, "siblings halted promptly (spins = {total})");
    }

    fn check_threaded<P>(protocol: P, inputs: &[u64])
    where
        P: Protocol,
        P::Proc: Send,
    {
        let outcome = run_threaded(&protocol, inputs).unwrap();
        outcome.report.check(inputs).unwrap();
        assert!(
            outcome.report.unanimous().is_some(),
            "all threads decide: {:?}",
            outcome.report
        );
    }

    #[test]
    fn bounded_threads_give_up_without_deciding() {
        // Budget 0: no thread may take a step, so nobody decides — but the
        // report is still checkable (check ignores undecided slots).
        let outcome = run_threaded_bounded(&MaxRegConsensus::new(3), &[2, 0, 1], 0).unwrap();
        assert_eq!(outcome.report.decisions, vec![None, None, None]);
        outcome.report.check(&[2, 0, 1]).unwrap();
        // A generous budget decides as usual.
        let outcome = run_threaded_bounded(&MaxRegConsensus::new(3), &[2, 0, 1], 100_000).unwrap();
        outcome.report.check(&[2, 0, 1]).unwrap();
        assert!(outcome.report.unanimous().is_some());
    }

    #[test]
    fn captured_traces_replay_to_the_identical_report() {
        let protocol = CasConsensus::new(4);
        let inputs = [3, 1, 0, 2];
        let outcome = run_threaded_traced(&protocol, &inputs, 200_000).unwrap();
        assert_eq!(outcome.trace.n(), 4);
        assert_eq!(outcome.trace.len() as u64, outcome.report.steps);
        let replayed =
            cbh_sim::replay_schedule(&protocol, &inputs, &outcome.trace.schedule()).unwrap();
        assert_eq!(replayed, outcome.report, "replay is lockstep-identical");
        // And the capture survives its wire format.
        let bytes = outcome.trace.to_bytes();
        assert_eq!(CompactTrace::from_bytes(&bytes).unwrap(), outcome.trace);
    }

    #[test]
    fn traced_and_plain_runs_share_semantics() {
        // Same protocol, same inputs: capture must not change what the run
        // computes (decisions may differ — schedules are physical — but both
        // must pass the consensus checks).
        let inputs = [5, 0, 3, 3, 1, 2];
        let traced = run_threaded_traced(&MaxRegConsensus::new(6), &inputs, 200_000).unwrap();
        traced.report.check(&inputs).unwrap();
        assert!(traced.report.unanimous().is_some());
    }

    #[test]
    fn threaded_cas() {
        check_threaded(CasConsensus::new(8), &[7, 1, 1, 3, 0, 2, 5, 1]);
    }

    #[test]
    fn threaded_faa_tas() {
        check_threaded(FaaTasConsensus::new(8), &[0, 1, 1, 0, 0, 1, 0, 1]);
    }

    #[test]
    fn threaded_max_registers() {
        check_threaded(MaxRegConsensus::new(6), &[5, 0, 3, 3, 1, 2]);
    }

    #[test]
    fn threaded_swap() {
        check_threaded(SwapConsensus::new(4), &[3, 1, 1, 0]);
    }

    #[test]
    fn threaded_registers() {
        check_threaded(register_consensus(4), &[2, 2, 0, 1]);
    }

    #[test]
    fn threaded_unbounded_tracks() {
        check_threaded(track_consensus(3, BitWrite::Write1), &[2, 0, 1]);
    }
}
