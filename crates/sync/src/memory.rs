//! Real-thread execution of protocol state machines.

use cbh_model::{Action, CellState, MemorySpec, ModelError, Op, Process, Protocol, Value};
use cbh_sim::ConsensusReport;
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// A thread-safe shared memory implementing the model's atomic instructions.
///
/// Each location is a [`CellState`] behind its own mutex; one instruction =
/// one critical section, which realizes the model's atomicity for arbitrary
/// read-modify-write instructions. Multiple assignment locks its target
/// locations in ascending order (two-phase), so it is atomic and
/// deadlock-free.
pub struct SharedMemory {
    spec: MemorySpec,
    cells: RwLock<Vec<Arc<Mutex<CellState>>>>,
    growable: bool,
    touched: AtomicUsize,
    steps: AtomicU64,
}

impl SharedMemory {
    /// Builds the memory described by `spec`.
    pub fn new(spec: &MemorySpec) -> Self {
        // Reuse the deterministic memory to materialise initial cells.
        let proto = cbh_model::Memory::new(spec);
        let cells = (0..proto.len())
            .map(|i| Arc::new(Mutex::new(proto.cell(i).expect("in range").clone())))
            .collect();
        SharedMemory {
            spec: spec.clone(),
            cells: RwLock::new(cells),
            growable: spec.bounded_len().is_none(),
            touched: AtomicUsize::new(0),
            steps: AtomicU64::new(0),
        }
    }

    /// Locations ever touched (the Table 1 space measure).
    pub fn touched(&self) -> usize {
        self.touched.load(Ordering::Relaxed)
    }

    /// Total instructions applied.
    pub fn steps(&self) -> u64 {
        self.steps.load(Ordering::Relaxed)
    }

    fn cell(&self, loc: usize) -> Result<Arc<Mutex<CellState>>, ModelError> {
        {
            let cells = self.cells.read();
            if let Some(c) = cells.get(loc) {
                return Ok(Arc::clone(c));
            }
            if !self.growable {
                return Err(ModelError::OutOfBounds {
                    loc,
                    len: cells.len(),
                });
            }
        }
        let mut cells = self.cells.write();
        while cells.len() <= loc {
            let i = cells.len();
            let fresh = cbh_model::Memory::new(
                &MemorySpec::unbounded(self.spec.iset()).with_default(Value::zero()),
            );
            let _ = fresh; // template only; build the default cell directly
            let cell = if let Some(cap) = self.spec.iset().buffer_capacity() {
                CellState::buffer(cap)
            } else {
                CellState::word(Value::zero())
            };
            let _ = i;
            cells.push(Arc::new(Mutex::new(cell)));
        }
        Ok(Arc::clone(&cells[loc]))
    }

    fn note(&self, loc: usize) {
        self.touched.fetch_max(loc + 1, Ordering::Relaxed);
        self.steps.fetch_add(1, Ordering::Relaxed);
    }

    /// Applies one atomic step.
    ///
    /// # Errors
    ///
    /// Same error conditions as [`cbh_model::Memory::apply`].
    pub fn apply(&self, op: &Op) -> Result<Value, ModelError> {
        match op {
            Op::Single { loc, instr } => {
                self.spec.iset().check(instr)?;
                let cell = self.cell(*loc)?;
                self.note(*loc);
                let mut guard = cell.lock();
                guard.apply(instr)
            }
            Op::MultiAssign(writes) => {
                for (i, (loc, _)) in writes.iter().enumerate() {
                    if writes[..i].iter().any(|(l, _)| l == loc) {
                        return Err(ModelError::DuplicateMultiAssignTarget { loc: *loc });
                    }
                }
                let mut sorted: Vec<(usize, &Value)> =
                    writes.iter().map(|(l, v)| (*l, v)).collect();
                sorted.sort_by_key(|(l, _)| *l);
                let cells: Vec<(Arc<Mutex<CellState>>, &Value)> = sorted
                    .iter()
                    .map(|(l, v)| Ok((self.cell(*l)?, *v)))
                    .collect::<Result<_, ModelError>>()?;
                // Lock in ascending location order: atomic and deadlock-free.
                let mut guards: Vec<_> = cells.iter().map(|(c, _)| c.lock()).collect();
                for ((_, v), guard) in cells.iter().zip(guards.iter_mut()) {
                    guard.multi_assign_write((*v).clone());
                }
                for (l, _) in &sorted {
                    self.note(*l);
                }
                Ok(Value::Bot)
            }
        }
    }
}

/// The result of a threaded run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadOutcome {
    /// Decisions and space usage, in the same shape as the simulator's.
    pub report: ConsensusReport,
}

/// Runs every process of `protocol` on its own OS thread until all decide.
///
/// Obstruction-free protocols have no deterministic termination guarantee
/// under true concurrency, so each thread applies randomized exponential
/// backoff when it has gone a long time without deciding — the practical
/// analogue of the randomized wait-free transform in `cbh-random`.
///
/// # Errors
///
/// Returns the first [`ModelError`] any thread hits (the error aborts that
/// thread; others finish or exhaust their step caps).
///
/// # Panics
///
/// Panics if `inputs.len() != protocol.n()`.
pub fn run_threaded<P>(protocol: &P, inputs: &[u64]) -> Result<ThreadOutcome, ModelError>
where
    P: Protocol,
    P::Proc: Send,
{
    run_threaded_bounded(protocol, inputs, u64::MAX)
}

/// [`run_threaded`] with a per-thread step budget: a thread that has applied
/// `max_steps` instructions without deciding gives up and leaves its decision
/// slot `None`.
///
/// This is the oracle-comparable form the conformance fuzzer runs: the
/// returned [`ConsensusReport`] can always be `check`ed for agreement and
/// validity among the processes that *did* decide (`check` ignores `None`
/// slots), and the budget guarantees the backend terminates on every
/// scenario, including adversarially contended ones.
///
/// # Errors
///
/// Returns the first [`ModelError`] any thread hits.
///
/// # Panics
///
/// Panics if `inputs.len() != protocol.n()`.
pub fn run_threaded_bounded<P>(
    protocol: &P,
    inputs: &[u64],
    max_steps: u64,
) -> Result<ThreadOutcome, ModelError>
where
    P: Protocol,
    P::Proc: Send,
{
    assert_eq!(inputs.len(), protocol.n(), "one input per process");
    let memory = SharedMemory::new(&protocol.memory_spec());
    let decisions: Vec<Mutex<Option<u64>>> = (0..protocol.n()).map(|_| Mutex::new(None)).collect();
    let error: Mutex<Option<ModelError>> = Mutex::new(None);

    std::thread::scope(|scope| {
        for (pid, &input) in inputs.iter().enumerate() {
            let mut proc = protocol.spawn(pid, input);
            let memory = &memory;
            let decisions = &decisions;
            let error = &error;
            scope.spawn(move || {
                let mut since_backoff: u32 = 0;
                let mut window_us: u64 = 1;
                let mut taken: u64 = 0;
                loop {
                    match proc.action() {
                        Action::Decide(v) => {
                            *decisions[pid].lock() = Some(v);
                            return;
                        }
                        Action::Invoke(_) if taken >= max_steps => return,
                        Action::Invoke(op) => match memory.apply(&op) {
                            Ok(result) => {
                                taken += 1;
                                proc.absorb(result);
                            }
                            Err(e) => {
                                let mut slot = error.lock();
                                if slot.is_none() {
                                    *slot = Some(e);
                                }
                                return;
                            }
                        },
                    }
                    since_backoff += 1;
                    if since_backoff > 256 {
                        // A long undecided stretch means heavy contention:
                        // back off for a pseudo-random, growing interval so
                        // somebody gets an effectively-solo window.
                        since_backoff = 0;
                        let jitter = (pid as u64 + 1).wrapping_mul(0x9E37_79B9) % window_us.max(1);
                        std::thread::sleep(std::time::Duration::from_micros(
                            window_us + jitter,
                        ));
                        window_us = (window_us * 2).min(2_000);
                    }
                }
            });
        }
    });

    if let Some(e) = error.into_inner() {
        return Err(e);
    }
    let decided: Vec<Option<u64>> = decisions.iter().map(|d| *d.lock()).collect();
    let locations_allocated = memory.cells.read().len();
    Ok(ThreadOutcome {
        report: ConsensusReport {
            decisions: decided,
            steps: memory.steps(),
            locations_allocated,
            locations_touched: memory.touched(),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbh_core::cas::CasConsensus;
    use cbh_core::intro::FaaTasConsensus;
    use cbh_core::maxreg::MaxRegConsensus;
    use cbh_core::registers::register_consensus;
    use cbh_core::swap::SwapConsensus;
    use cbh_core::tracks::track_consensus;
    use cbh_core::util::BitWrite;
    use cbh_model::{Instruction, InstructionSet};

    #[test]
    fn shared_memory_applies_instructions_atomically() {
        let spec = MemorySpec::bounded(InstructionSet::FetchAndAdd, 1);
        let mem = SharedMemory::new(&spec);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        mem.apply(&Op::single(0, Instruction::fetch_and_add(1)))
                            .unwrap();
                    }
                });
            }
        });
        let total = mem
            .apply(&Op::single(0, Instruction::fetch_and_add(0)))
            .unwrap();
        assert_eq!(total, Value::int(4000), "no increment was lost");
    }

    #[test]
    fn shared_memory_rejects_uniformity_violations() {
        let mem = SharedMemory::new(&MemorySpec::bounded(InstructionSet::MaxRegister, 1));
        assert!(mem.apply(&Op::read(0)).is_err());
    }

    #[test]
    fn multi_assign_is_atomic_under_threads() {
        let mem = SharedMemory::new(&MemorySpec::bounded(InstructionSet::ReadWrite, 2));
        std::thread::scope(|s| {
            for t in 0..4i64 {
                let mem = &mem;
                s.spawn(move || {
                    for _ in 0..500 {
                        mem.apply(&Op::multi_assign([
                            (0, Value::int(t)),
                            (1, Value::int(t)),
                        ]))
                        .unwrap();
                    }
                });
            }
        });
        // Both cells must agree: a torn multi-assign would leave them mixed.
        let a = mem.apply(&Op::read(0)).unwrap();
        let b = mem.apply(&Op::read(1)).unwrap();
        assert_eq!(a, b, "atomic multiple assignment never tears");
    }

    fn check_threaded<P>(protocol: P, inputs: &[u64])
    where
        P: Protocol,
        P::Proc: Send,
    {
        let outcome = run_threaded(&protocol, inputs).unwrap();
        outcome.report.check(inputs).unwrap();
        assert!(
            outcome.report.unanimous().is_some(),
            "all threads decide: {:?}",
            outcome.report
        );
    }

    #[test]
    fn bounded_threads_give_up_without_deciding() {
        // Budget 0: no thread may take a step, so nobody decides — but the
        // report is still checkable (check ignores undecided slots).
        let outcome = run_threaded_bounded(&MaxRegConsensus::new(3), &[2, 0, 1], 0).unwrap();
        assert_eq!(outcome.report.decisions, vec![None, None, None]);
        outcome.report.check(&[2, 0, 1]).unwrap();
        // A generous budget decides as usual.
        let outcome = run_threaded_bounded(&MaxRegConsensus::new(3), &[2, 0, 1], 100_000).unwrap();
        outcome.report.check(&[2, 0, 1]).unwrap();
        assert!(outcome.report.unanimous().is_some());
    }

    #[test]
    fn threaded_cas() {
        check_threaded(CasConsensus::new(8), &[7, 1, 1, 3, 0, 2, 5, 1]);
    }

    #[test]
    fn threaded_faa_tas() {
        check_threaded(FaaTasConsensus::new(8), &[0, 1, 1, 0, 0, 1, 0, 1]);
    }

    #[test]
    fn threaded_max_registers() {
        check_threaded(MaxRegConsensus::new(6), &[5, 0, 3, 3, 1, 2]);
    }

    #[test]
    fn threaded_swap() {
        check_threaded(SwapConsensus::new(4), &[3, 1, 1, 0]);
    }

    #[test]
    fn threaded_registers() {
        check_threaded(register_consensus(4), &[2, 2, 0, 1]);
    }

    #[test]
    fn threaded_unbounded_tracks() {
        check_threaded(track_consensus(3, BitWrite::Write1), &[2, 0, 1]);
    }
}
