//! Thread-backed runtime and native concurrent objects.
//!
//! The deterministic machine in `cbh-sim` is the paper's model; this crate is
//! the bridge to *real* concurrency:
//!
//! - [`SharedMemory`] realizes the model's atomic instructions over OS
//!   threads (per-location mutual exclusion makes exotic instructions like
//!   `multiply(x)` atomic, exactly as a hardware RMW would);
//! - [`run_threaded`] executes any [`Protocol`](cbh_model::Protocol) state
//!   machine on real threads, with randomized backoff so obstruction-free
//!   protocols terminate in practice;
//! - [`run_threaded_traced`] additionally captures the physical schedule in
//!   a low-perturbation per-thread event log ([`compact_log`]), merged into
//!   a linearization the deterministic model replays bit-for-bit;
//! - [`objects`] offers the paper's derived objects as ordinary, directly
//!   usable concurrent types: max-registers, `ℓ`-buffers, history objects
//!   (Lemma 6.1), single-writer register arrays (Lemma 6.2) and `m`-component
//!   counters;
//! - [`universal`] realizes the conclusion's universality remark: any
//!   sequentially specified object from one history object.
//!
//! # Examples
//!
//! ```
//! use cbh_core::maxreg::MaxRegConsensus;
//! use cbh_sync::run_threaded;
//!
//! let protocol = MaxRegConsensus::new(4);
//! let outcome = run_threaded(&protocol, &[2, 0, 1, 2]).unwrap();
//! outcome.report.check(&[2, 0, 1, 2]).unwrap();
//! assert!(outcome.report.unanimous().is_some());
//! ```

pub mod compact_log;
pub mod memory;
pub mod objects;
pub mod universal;

pub use compact_log::{merge_logs, ThreadLog, TraceOutcome};
pub use memory::{
    run_threaded, run_threaded_bounded, run_threaded_traced, SharedMemory, ThreadOutcome,
};
