//! `ℓ`-buffers: history objects, single-writer registers and `⌈n/ℓ⌉`-location
//! consensus (Section 6).
//!
//! An `ℓ`-buffer returns the inputs of the `ℓ` most recent writes. Lemma 6.1
//! simulates a *history object* (supporting `append(x)` / `get-history()`) for
//! up to `ℓ` writers in a single buffer: each append writes the pair
//! `(h, x)` where `h` is the history its own `get-history()` returned. The
//! reconstruction rule ([`reconstruct_history`]) recovers the full linearized
//! history from the `ℓ` visible pairs. Lemma 6.2 derives `ℓ` single-writer
//! registers ([`swmr_read`]), and Theorem 6.3 stacks racing counters on `n`
//! such registers spread over `⌈n/ℓ⌉` buffers ([`buffer_consensus`]).

use crate::counter::{CounterEvent, CounterFamily, CounterRequest, CounterSim};
use crate::racing::RacingConsensus;
use crate::util::div_ceil;
use cbh_bigint::BigInt;
use cbh_model::{Instruction, InstructionSet, MemorySpec, Op, Value};

/// An appended record: `(writer, seq, payload)`. The writer/seq tag makes
/// every record unique, as Lemma 6.1 requires.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Record {
    /// The appending process.
    pub writer: u64,
    /// The writer's sequence number (strictly increasing per writer).
    pub seq: u64,
    /// The appended value.
    pub payload: Value,
}

impl Record {
    /// Encodes the record as a model value.
    pub fn encode(&self) -> Value {
        Value::seq([
            Value::int(self.writer),
            Value::int(self.seq),
            self.payload.clone(),
        ])
    }

    /// Decodes a record.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a record encoding.
    pub fn decode(v: &Value) -> Record {
        let items = v.as_seq().expect("record is a sequence");
        Record {
            writer: items[0].as_u64().expect("writer id"),
            seq: items[1].as_u64().expect("sequence number"),
            payload: items[2].clone(),
        }
    }
}

/// Reconstructs the linearized history from an `ℓ-buffer-read` result whose
/// entries are `(history, record)` pairs (Lemma 6.1's `get-history()`).
///
/// `entries` is the raw vector returned by the buffer read: `⊥`-padded,
/// oldest first. The result is the sequence of record encodings, oldest first.
///
/// # Panics
///
/// Panics if a non-`⊥` entry is not a `(history, record)` pair.
pub fn reconstruct_history(entries: &[Value]) -> Vec<Value> {
    let present: Vec<(&[Value], &Value)> = entries
        .iter()
        .filter(|e| !e.is_bot())
        .map(|e| {
            let pair = e.as_seq().expect("buffer entries are (history, record) pairs");
            assert_eq!(pair.len(), 2, "buffer entries are (history, record) pairs");
            (
                pair[0].as_seq().expect("history is a sequence"),
                &pair[1],
            )
        })
        .collect();

    // Fewer than ℓ writes ever: the visible records are the whole history.
    if present.len() < entries.len() {
        return present.iter().map(|(_, x)| (*x).clone()).collect();
    }
    if present.is_empty() {
        return Vec::new();
    }

    // Buffer is full: ℓ pairs (h₁,x₁)…(h_ℓ,x_ℓ), oldest first. Take the
    // longest attached history h; if it contains x₁ the records in between
    // duplicate h's suffix, otherwise (ℓ concurrent appends — Figure 1) h is
    // exactly everything before x₁.
    let x1 = present[0].1;
    let h = present
        .iter()
        .map(|(h, _)| *h)
        .max_by_key(|h| h.len())
        .expect("non-empty");
    let mut out: Vec<Value> = match h.iter().position(|r| r == x1) {
        Some(pos) => h[..pos].to_vec(),
        None => h.to_vec(),
    };
    out.extend(present.iter().map(|(_, x)| (*x).clone()));
    out
}

/// Lemma 6.2: reads single-writer register `owner` out of a history — the
/// payload of the owner's most recent append, or `None` if the owner never
/// wrote.
pub fn swmr_read(history: &[Value], owner: u64) -> Option<Value> {
    history
        .iter()
        .rev()
        .map(Record::decode)
        .find(|r| r.writer == owner)
        .map(|r| r.payload)
}

/// An `m`-component counter over `⌈n/ℓ⌉` `ℓ`-buffers (Theorem 6.3).
///
/// Process `pid` appends its per-component increment tallies to the history
/// object simulated in buffer `pid / ℓ`; a scan double-collects the raw buffer
/// contents (histories grow, so collects that repeat are consistent), rebuilds
/// each history, extracts every process's latest tally (Lemma 6.2) and sums.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BufferCounterFamily {
    m: usize,
    n: usize,
    ell: usize,
    /// Perform the append's write step as an atomic multiple assignment
    /// (Section 7's instruction) instead of a plain `ℓ-buffer-write` — an
    /// ablation knob; the space cost is identical, as Theorem 7.5 predicts.
    multi_assign: bool,
}

impl BufferCounterFamily {
    /// An `m`-component counter for `n` processes over `ℓ`-buffers.
    ///
    /// # Panics
    ///
    /// Panics if any argument is zero.
    pub fn new(m: usize, n: usize, ell: usize) -> Self {
        assert!(m > 0 && n > 0 && ell > 0, "need components, processes, ℓ ≥ 1");
        BufferCounterFamily {
            m,
            n,
            ell,
            multi_assign: false,
        }
    }

    /// Switches the append's write step to an atomic multiple assignment.
    pub fn with_multi_assign(mut self, on: bool) -> Self {
        self.multi_assign = on;
        self
    }

    /// Number of buffers `⌈n/ℓ⌉`.
    pub fn buffers(&self) -> usize {
        div_ceil(self.n, self.ell)
    }
}

impl CounterFamily for BufferCounterFamily {
    type Sim = BufferCounterSim;

    fn m(&self) -> usize {
        self.m
    }

    fn name(&self) -> String {
        format!(
            "{}-buffers-of-capacity-{}{}",
            self.buffers(),
            self.ell,
            if self.multi_assign { "+multi-assign" } else { "" }
        )
    }

    fn memory_spec(&self) -> MemorySpec {
        MemorySpec::bounded(InstructionSet::Buffer(self.ell), self.buffers())
    }

    fn spawn(&self, pid: usize) -> BufferCounterSim {
        assert!(pid < self.n, "pid out of range");
        BufferCounterSim {
            family: *self,
            pid: pid as u64,
            buf: pid / self.ell,
            seq: 0,
            my_counts: vec![0; self.m],
            pending: None,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum BufPending {
    /// Append step 1: `get-history()` on the own buffer.
    IncrementRead,
    /// Append step 2: `ℓ-buffer-write((h, record))`.
    IncrementWrite {
        history: Vec<Value>,
    },
    /// Double-collect of raw buffer contents.
    Scan {
        cur: Vec<Value>,
        prev: Option<Vec<Value>>,
    },
}

/// Per-process state of the buffer counter.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BufferCounterSim {
    family: BufferCounterFamily,
    pid: u64,
    buf: usize,
    seq: u64,
    my_counts: Vec<u64>,
    pending: Option<BufPending>,
}

impl BufferCounterSim {
    fn record(&self) -> Record {
        Record {
            writer: self.pid,
            seq: self.seq,
            payload: Value::seq(self.my_counts.iter().map(|&c| Value::int(c))),
        }
    }

    fn entry(&self, history: &[Value]) -> Value {
        Value::pair(Value::seq(history.iter().cloned()), self.record().encode())
    }

    fn totals(&self, raw_buffers: &[Value]) -> Vec<BigInt> {
        let mut totals = vec![BigInt::zero(); self.family.m];
        for raw in raw_buffers {
            let entries = raw.as_seq().expect("buffer read returns a sequence");
            let history = reconstruct_history(entries);
            // Latest tally per writer in this buffer.
            let mut seen = std::collections::BTreeSet::new();
            for rec in history.iter().rev().map(Record::decode) {
                if !seen.insert(rec.writer) {
                    continue;
                }
                let counts = rec.payload.as_seq().expect("tallies are sequences");
                for (v, c) in counts.iter().enumerate() {
                    totals[v] += &BigInt::from(c.as_u64().expect("tally"));
                }
            }
        }
        totals
    }
}

impl CounterSim for BufferCounterSim {
    fn m(&self) -> usize {
        self.family.m
    }

    fn supports_decrement(&self) -> bool {
        false
    }

    fn start(&mut self, req: CounterRequest) {
        assert!(self.pending.is_none(), "counter operation already in flight");
        self.pending = Some(match req {
            CounterRequest::Increment(v) => {
                self.my_counts[v] += 1;
                BufPending::IncrementRead
            }
            CounterRequest::Scan => BufPending::Scan {
                cur: Vec::new(),
                prev: None,
            },
            CounterRequest::Decrement(_) => panic!("buffer counter has no decrement"),
        });
    }

    fn poised(&self) -> Op {
        match self.pending.as_ref().expect("no counter operation in flight") {
            BufPending::IncrementRead => Op::single(self.buf, Instruction::BufferRead),
            BufPending::IncrementWrite { history } => {
                let entry = self.entry(history);
                if self.family.multi_assign {
                    Op::multi_assign([(self.buf, entry)])
                } else {
                    Op::single(self.buf, Instruction::BufferWrite(entry))
                }
            }
            BufPending::Scan { cur, .. } => Op::single(cur.len(), Instruction::BufferRead),
        }
    }

    fn absorb(&mut self, result: Value) -> Option<CounterEvent> {
        let pending = self.pending.as_mut().expect("no counter operation in flight");
        match pending {
            BufPending::IncrementRead => {
                let entries = result.as_seq().expect("buffer read returns a sequence");
                let history = reconstruct_history(entries);
                *pending = BufPending::IncrementWrite { history };
                None
            }
            BufPending::IncrementWrite { .. } => {
                self.seq += 1;
                self.pending = None;
                Some(CounterEvent::Done)
            }
            BufPending::Scan { cur, prev } => {
                cur.push(result);
                if cur.len() < self.family.buffers() {
                    return None;
                }
                let finished = std::mem::take(cur);
                if prev.as_ref() == Some(&finished) {
                    let totals = self.totals(&finished);
                    self.pending = None;
                    Some(CounterEvent::Counts(totals))
                } else {
                    *prev = Some(finished);
                    None
                }
            }
        }
    }
}

/// Theorem 6.3: `n`-consensus using `⌈n/ℓ⌉` `ℓ`-buffers.
///
/// # Examples
///
/// ```
/// use cbh_core::buffer::buffer_consensus;
/// use cbh_sim::{run_consensus, RandomScheduler};
///
/// let protocol = buffer_consensus(6, 3); // two 3-buffers
/// let inputs = [5, 5, 0, 2, 2, 2];
/// let report = run_consensus(&protocol, &inputs, RandomScheduler::seeded(4), 2_000_000)
///     .unwrap();
/// report.check(&inputs).unwrap();
/// assert_eq!(report.locations_touched, 2, "⌈6/3⌉ buffers");
/// ```
pub fn buffer_consensus(n: usize, ell: usize) -> RacingConsensus<BufferCounterFamily> {
    RacingConsensus::new(BufferCounterFamily::new(n, n, ell), n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbh_model::Memory;
    use cbh_sim::{run_consensus, RandomScheduler, RoundRobinScheduler};

    fn rec(writer: u64, seq: u64, val: i64) -> Value {
        Record {
            writer,
            seq,
            payload: Value::int(val),
        }
        .encode()
    }

    fn pair(history: &[Value], record: &Value) -> Value {
        Value::pair(Value::seq(history.iter().cloned()), record.clone())
    }

    #[test]
    fn empty_buffer_reconstructs_empty_history() {
        assert!(reconstruct_history(&[Value::Bot, Value::Bot, Value::Bot]).is_empty());
    }

    #[test]
    fn partial_buffer_is_the_whole_history() {
        let r1 = rec(0, 0, 10);
        let r2 = rec(1, 0, 20);
        let entries = [
            Value::Bot,
            pair(&[], &r1),
            pair(std::slice::from_ref(&r1), &r2),
        ];
        assert_eq!(reconstruct_history(&entries), vec![r1, r2]);
    }

    #[test]
    fn full_buffer_splices_longest_history() {
        // ℓ = 2. Records r1 r2 r3; buffer shows (h2, r2), (h3, r3) where
        // h2 = [r1], h3 = [r1, r2]; h3 contains x1 = r2 at position 1.
        let r1 = rec(0, 0, 1);
        let r2 = rec(1, 0, 2);
        let r3 = rec(0, 1, 3);
        let entries = [
            pair(std::slice::from_ref(&r1), &r2),
            pair(&[r1.clone(), r2.clone()], &r3),
        ];
        assert_eq!(reconstruct_history(&entries), vec![r1, r2, r3]);
    }

    #[test]
    fn figure1_concurrent_appends() {
        // Figure 1: ℓ appends all performed get-history() before any wrote, so
        // no attached history contains x₁ — the reconstruction takes the
        // longest h whole and appends all ℓ visible records.
        let ell = 3;
        let old1 = rec(9, 0, 100);
        let old2 = rec(9, 1, 200);
        // All three writers saw the same old history [old1, old2].
        let h: Vec<Value> = vec![old1.clone(), old2.clone()];
        let x1 = rec(0, 0, 1);
        let x2 = rec(1, 0, 2);
        let x3 = rec(2, 0, 3);
        let entries: Vec<Value> = vec![pair(&h, &x1), pair(&h, &x2), pair(&h, &x3)];
        assert_eq!(entries.len(), ell);
        assert_eq!(
            reconstruct_history(&entries),
            vec![old1, old2, x1, x2, x3],
            "Lemma 6.1, 'h does not contain x₁' branch"
        );
    }

    #[test]
    fn swmr_read_returns_latest_per_owner() {
        let history = vec![rec(0, 0, 5), rec(1, 0, 6), rec(0, 1, 7)];
        assert_eq!(swmr_read(&history, 0), Some(Value::int(7)));
        assert_eq!(swmr_read(&history, 1), Some(Value::int(6)));
        assert_eq!(swmr_read(&history, 2), None);
    }

    #[test]
    fn history_object_linearizes_under_memory() {
        // Drive two sims through interleaved appends on one 2-buffer and check
        // a reader reconstructs all records in order.
        let family = BufferCounterFamily::new(1, 2, 2);
        let mut mem = Memory::new(&family.memory_spec());
        let mut a = family.spawn(0);
        let mut b = family.spawn(1);
        for round in 0..4 {
            for sim in [&mut a, &mut b] {
                sim.start(CounterRequest::Increment(0));
                loop {
                    let r = mem.apply(&sim.poised()).unwrap();
                    if sim.absorb(r).is_some() {
                        break;
                    }
                }
            }
            let _ = round;
        }
        // Scan: count total increments = 8.
        a.start(CounterRequest::Scan);
        let counts = loop {
            let r = mem.apply(&a.poised()).unwrap();
            if let Some(CounterEvent::Counts(c)) = a.absorb(r) {
                break c;
            }
        };
        assert_eq!(counts[0].to_u64(), Some(8));
    }

    #[test]
    fn buffer_consensus_space_matches_ceil_n_over_ell() {
        for (n, ell) in [(4usize, 1usize), (4, 2), (5, 2), (6, 3), (5, 5)] {
            let protocol = buffer_consensus(n, ell);
            let inputs: Vec<u64> = (0..n as u64).rev().collect();
            let report =
                run_consensus(&protocol, &inputs, RandomScheduler::seeded(9), 4_000_000).unwrap();
            report.check(&inputs).unwrap();
            assert_eq!(
                report.locations_touched,
                n.div_ceil(ell),
                "n={n} ℓ={ell}"
            );
        }
    }

    #[test]
    fn buffer_consensus_many_seeds() {
        let protocol = buffer_consensus(4, 2);
        let inputs = [3, 1, 1, 1];
        for seed in 0..10 {
            let report =
                run_consensus(&protocol, &inputs, RandomScheduler::seeded(seed), 4_000_000)
                    .unwrap();
            report.check(&inputs).unwrap();
            assert!(report.unanimous().is_some());
        }
        run_consensus(&protocol, &inputs, RoundRobinScheduler::new(), 4_000_000)
            .unwrap()
            .check(&inputs)
            .unwrap();
    }

    #[test]
    fn multi_assign_variant_behaves_identically() {
        let family = BufferCounterFamily::new(3, 3, 2).with_multi_assign(true);
        let protocol = RacingConsensus::new(family, 3);
        let inputs = [0, 2, 2];
        for seed in 0..6 {
            let report =
                run_consensus(&protocol, &inputs, RandomScheduler::seeded(seed), 4_000_000)
                    .unwrap();
            report.check(&inputs).unwrap();
            assert_eq!(report.locations_touched, 2);
        }
    }
}
