//! Table 1 as data: the space hierarchy itself.
//!
//! Each [`TableRow`] records an instruction-set group, its lower and upper
//! bounds on `SP(I, n)` (as printable formulas plus evaluable closures where
//! the bound is exact), and where in this repository the witnessing algorithm
//! and lower-bound artifact live. The `table1` binary in `cbh-bench` walks
//! this table, runs every protocol, and reprints the paper's Table 1 with
//! measured space next to the claimed bounds.

use crate::util::ceil_log2;
use cbh_model::InstructionSet;
use std::fmt;

/// A space bound as a function of `n` (and `ℓ` for the buffer row).
#[derive(Clone, Copy)]
pub enum Bound {
    /// An exact formula, evaluable.
    Exact {
        /// Printable form, e.g. `"⌈n/ℓ⌉"`.
        formula: &'static str,
        /// Evaluator; `ell` is ignored by non-buffer rows.
        eval: fn(n: u64, ell: u64) -> u64,
    },
    /// An asymptotic bound that the paper does not pin down exactly.
    Asymptotic(&'static str),
    /// No bounded number of locations suffices.
    Unbounded,
}

impl Bound {
    /// Evaluates the bound if it is exact.
    pub fn eval(&self, n: u64, ell: u64) -> Option<u64> {
        match self {
            Bound::Exact { eval, .. } => Some(eval(n, ell)),
            _ => None,
        }
    }

    /// The printable formula.
    pub fn formula(&self) -> &'static str {
        match self {
            Bound::Exact { formula, .. } => formula,
            Bound::Asymptotic(s) => s,
            Bound::Unbounded => "∞",
        }
    }
}

impl fmt::Debug for Bound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.formula())
    }
}

impl fmt::Display for Bound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.formula())
    }
}

/// One row of Table 1.
#[derive(Debug, Clone)]
pub struct TableRow {
    /// The instruction sets this row groups together.
    pub sets: Vec<InstructionSet>,
    /// Lower bound on `SP(I, n)`.
    pub lower: Bound,
    /// Upper bound on `SP(I, n)`.
    pub upper: Bound,
    /// Which paper result proves the upper bound.
    pub upper_source: &'static str,
    /// Which paper result proves the lower bound.
    pub lower_source: &'static str,
    /// Module in this repository witnessing the upper bound (if bounded).
    pub witness: &'static str,
}

/// The full Table 1, top row (weakest) to bottom (strongest).
pub fn table() -> Vec<TableRow> {
    use InstructionSet as S;
    vec![
        TableRow {
            sets: vec![S::ReadTas, S::ReadWrite1],
            lower: Bound::Unbounded,
            upper: Bound::Unbounded,
            lower_source: "Theorem 9.2 (Lemma 9.1)",
            upper_source: "Theorem 9.3 (unbounded tracks)",
            witness: "cbh_core::tracks::track_consensus",
        },
        TableRow {
            sets: vec![S::ReadWrite01],
            lower: Bound::Exact {
                formula: "n",
                eval: |n, _| n,
            },
            upper: Bound::Asymptotic("O(n log n)"),
            lower_source: "[EGZ18] via binary registers",
            upper_source: "Theorem 9.4",
            witness: "cbh_core::bitwise::write01_consensus",
        },
        TableRow {
            sets: vec![S::ReadWrite],
            lower: Bound::Exact {
                formula: "n",
                eval: |n, _| n,
            },
            upper: Bound::Exact {
                formula: "n",
                eval: |n, _| n,
            },
            lower_source: "[EGZ18]",
            upper_source: "[AH90, BRS15, Zhu15]",
            witness: "cbh_core::registers::register_consensus",
        },
        TableRow {
            sets: vec![S::ReadTasReset],
            lower: Bound::Asymptotic("Ω(√n)"),
            upper: Bound::Asymptotic("O(n log n)"),
            lower_source: "[FHS98]",
            upper_source: "Theorem 9.4",
            witness: "cbh_core::bitwise::tas_reset_consensus",
        },
        TableRow {
            sets: vec![S::ReadSwap],
            lower: Bound::Asymptotic("Ω(√n)"),
            upper: Bound::Exact {
                formula: "n−1",
                eval: |n, _| n - 1,
            },
            lower_source: "[FHS98]",
            upper_source: "Theorem 8.8 (Algorithm 1)",
            witness: "cbh_core::swap::SwapConsensus",
        },
        TableRow {
            sets: vec![S::Buffer(2)],
            lower: Bound::Exact {
                formula: "⌈(n−1)/ℓ⌉",
                eval: |n, ell| (n - 1).div_ceil(ell),
            },
            upper: Bound::Exact {
                formula: "⌈n/ℓ⌉",
                eval: |n, ell| n.div_ceil(ell),
            },
            lower_source: "Theorem 6.8 (and 7.5 with multi-assignment)",
            upper_source: "Theorem 6.3",
            witness: "cbh_core::buffer::buffer_consensus",
        },
        TableRow {
            sets: vec![S::ReadWriteIncrement, S::ReadWriteFetchIncrement],
            lower: Bound::Exact {
                formula: "2",
                eval: |_, _| 2,
            },
            upper: Bound::Asymptotic("O(log n)"),
            lower_source: "Theorem 5.1",
            upper_source: "Theorem 5.3",
            witness: "cbh_core::bitwise::increment_log_consensus",
        },
        TableRow {
            sets: vec![S::MaxRegister],
            lower: Bound::Exact {
                formula: "2",
                eval: |_, _| 2,
            },
            upper: Bound::Exact {
                formula: "2",
                eval: |_, _| 2,
            },
            lower_source: "Theorem 4.1",
            upper_source: "Theorem 4.2",
            witness: "cbh_core::maxreg::MaxRegConsensus",
        },
        TableRow {
            sets: vec![
                S::Cas,
                S::ReadSetBit,
                S::ReadAdd,
                S::ReadMultiply,
                S::FetchAndAdd,
                S::FetchAndMultiply,
            ],
            lower: Bound::Exact {
                formula: "1",
                eval: |_, _| 1,
            },
            upper: Bound::Exact {
                formula: "1",
                eval: |_, _| 1,
            },
            lower_source: "trivial",
            upper_source: "Theorem 3.3 / CAS folklore",
            witness: "cbh_core::{counter, cas}",
        },
    ]
}

/// The `O(log n)` location count our Theorem 5.3 implementation actually
/// uses: `(2+2)·⌈log₂ n⌉ − 2`.
pub fn increment_locations(n: u64) -> u64 {
    4 * ceil_log2(n) as u64 - 2
}

/// Renders the table like the paper's Table 1 (plus provenance columns).
pub fn render_table() -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<52} {:>12} {:>12}   {}\n",
        "Instruction set(s) I", "lower", "upper", "witness"
    ));
    for row in table() {
        let sets = row
            .sets
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!(
            "{:<52} {:>12} {:>12}   {}\n",
            sets,
            row.lower.formula(),
            row.upper.formula(),
            row.witness
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_nine_rows_covering_every_set() {
        let t = table();
        assert_eq!(t.len(), 9);
        let mut covered: Vec<InstructionSet> = t.iter().flat_map(|r| r.sets.clone()).collect();
        covered.sort_by_key(|s| format!("{s:?}"));
        // Every Table 1 set appears exactly once (intro sets are extras).
        for s in [
            InstructionSet::ReadTas,
            InstructionSet::ReadWrite,
            InstructionSet::MaxRegister,
            InstructionSet::Cas,
            InstructionSet::ReadSwap,
        ] {
            assert_eq!(covered.iter().filter(|&&c| c == s).count(), 1, "{s}");
        }
    }

    #[test]
    fn exact_bounds_evaluate() {
        let t = table();
        // Buffer row: ⌈(n−1)/ℓ⌉ vs ⌈n/ℓ⌉.
        let buffers = t
            .iter()
            .find(|r| matches!(r.sets[0], InstructionSet::Buffer(_)))
            .unwrap();
        assert_eq!(buffers.lower.eval(9, 2), Some(4));
        assert_eq!(buffers.upper.eval(9, 2), Some(5));
        assert_eq!(buffers.lower.eval(9, 4), Some(2));
        // Swap row: n−1.
        let swap = t
            .iter()
            .find(|r| r.sets.contains(&InstructionSet::ReadSwap))
            .unwrap();
        assert_eq!(swap.upper.eval(10, 1), Some(9));
        // Asymptotic rows evaluate to None.
        let tasreset = t
            .iter()
            .find(|r| r.sets.contains(&InstructionSet::ReadTasReset))
            .unwrap();
        assert_eq!(tasreset.lower.eval(10, 1), None);
    }

    #[test]
    fn lower_never_exceeds_upper_when_both_exact() {
        for row in table() {
            for n in 2..40u64 {
                for ell in 1..6u64 {
                    if let (Some(lo), Some(hi)) = (row.lower.eval(n, ell), row.upper.eval(n, ell))
                    {
                        assert!(lo <= hi, "row {:?} at n={n}, ℓ={ell}", row.sets);
                    }
                }
            }
        }
    }

    #[test]
    fn rendering_mentions_every_row() {
        let s = render_table();
        assert!(s.contains("max"));
        assert!(s.contains("⌈n/ℓ⌉"));
        assert!(s.contains("∞"));
        assert!(s.lines().count() == 10);
    }

    #[test]
    fn increment_formula() {
        assert_eq!(increment_locations(2), 2);
        assert_eq!(increment_locations(8), 10);
        assert_eq!(increment_locations(16), 14);
    }
}
