//! `n`-consensus from exactly two max-registers (Theorem 4.2).
//!
//! A max-register supports `read-max()` and `write-max(x)` (which only ever
//! raises the value). Theorem 4.1 shows one max-register cannot solve even
//! 2-process binary consensus (see `cbh-verify` for that adversary as code);
//! this module implements the matching upper bound: *two* suffice for any `n`.
//!
//! Values are pairs `(r, x)` — round and value — ordered lexicographically and
//! encoded into a single integer as `(x+1)·yʳ` for a fixed prime `y > n`, so
//! the integer order of encodings is exactly the lexicographic order of pairs.

use crate::primes::next_prime;
use crate::util::{DoubleCollect, ReadKind};
use cbh_bigint::BigInt;
use cbh_model::{Action, Instruction, InstructionSet, MemorySpec, Op, Process, Protocol, Value};

/// Lexicographically-ordered `(round, value)` pairs and their integer encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RoundValue {
    /// The round `r ≥ 0`.
    pub round: u64,
    /// The consensus value `x ∈ 0..n`.
    pub value: u64,
}

impl RoundValue {
    /// Encodes `(r, x)` as `(x+1)·yʳ`.
    pub fn encode(self, y: u64) -> BigInt {
        BigInt::from(self.value + 1) * BigInt::from(y).pow(self.round)
    }

    /// Decodes an encoded pair; `y` must be the prime used by
    /// [`RoundValue::encode`].
    ///
    /// # Panics
    ///
    /// Panics if `enc` is not a valid encoding (zero, or the cofactor is 0).
    pub fn decode(enc: &BigInt, y: u64) -> Self {
        assert!(enc.is_positive(), "encodings are positive");
        let round = enc.factor_multiplicity(y);
        let mut rest = enc.clone();
        for _ in 0..round {
            let (q, r) = rest.div_rem_euclid_u64(y);
            debug_assert_eq!(r, 0);
            rest = q;
        }
        let xp1 = rest.to_u64().expect("value fits a machine word");
        assert!(xp1 >= 1, "invalid encoding");
        RoundValue {
            round,
            value: xp1 - 1,
        }
    }
}

/// Two-max-register `n`-consensus (Theorem 4.2).
///
/// Both registers start at the encoding of `(0, 0)`. Each process alternates
/// `write-max` with a double-collect scan of both registers:
///
/// - scan shows `m₁ = (r+1, x)`, `m₂ = (r, x)` → decide `x`;
/// - scan shows `m₁ = m₂ = (r, x)` → `write-max(m₁, (r+1, x))`;
/// - otherwise → `write-max(m₂, value of m₁ in the scan)`.
///
/// Its first step writes `(0, input)` to `m₁`.
///
/// # Examples
///
/// ```
/// use cbh_core::maxreg::MaxRegConsensus;
/// use cbh_sim::{run_consensus, ObstructionScheduler};
///
/// let protocol = MaxRegConsensus::new(6);
/// let inputs = [5, 0, 2, 2, 4, 1];
/// let report = run_consensus(&protocol, &inputs, ObstructionScheduler::seeded(9, 8), 500_000)
///     .unwrap();
/// report.check(&inputs).unwrap();
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaxRegConsensus {
    n: usize,
    y: u64,
}

impl MaxRegConsensus {
    /// Max-register consensus among `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2, "consensus needs at least two processes");
        MaxRegConsensus {
            n,
            y: next_prime(n as u64),
        }
    }

    /// The prime `y > n` used by the pair encoding.
    pub fn prime(&self) -> u64 {
        self.y
    }
}

impl Protocol for MaxRegConsensus {
    type Proc = MaxRegProc;

    fn name(&self) -> String {
        "two-max-registers".into()
    }

    fn n(&self) -> usize {
        self.n
    }

    fn domain(&self) -> u64 {
        self.n as u64
    }

    fn memory_spec(&self) -> MemorySpec {
        let zero = RoundValue { round: 0, value: 0 }.encode(self.y);
        MemorySpec::bounded(InstructionSet::MaxRegister, 2)
            .with_initial(vec![Value::Int(zero.clone()), Value::Int(zero)])
    }

    fn spawn(&self, _pid: usize, input: u64) -> MaxRegProc {
        assert!(input < self.n as u64, "input out of domain");
        MaxRegProc {
            y: self.y,
            phase: MaxRegPhase::Write {
                loc: 0,
                value: RoundValue {
                    round: 0,
                    value: input,
                },
            },
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum MaxRegPhase {
    /// Poised to `write-max(value)` on register `loc`.
    Write { loc: usize, value: RoundValue },
    /// Scanning both registers.
    Scan(DoubleCollect),
    /// Decided.
    Done(u64),
}

/// Per-process state of the two-max-register protocol.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MaxRegProc {
    y: u64,
    phase: MaxRegPhase,
}

impl MaxRegProc {
    fn fresh_scan() -> MaxRegPhase {
        MaxRegPhase::Scan(DoubleCollect::new(vec![0, 1], ReadKind::ReadMax))
    }

    fn handle_snapshot(&mut self, snap: Vec<Value>) {
        let m1 = RoundValue::decode(snap[0].as_int().expect("register holds int"), self.y);
        let m2 = RoundValue::decode(snap[1].as_int().expect("register holds int"), self.y);
        self.phase = if m1.round == m2.round + 1 && m1.value == m2.value {
            MaxRegPhase::Done(m1.value)
        } else if m1 == m2 {
            MaxRegPhase::Write {
                loc: 0,
                value: RoundValue {
                    round: m1.round + 1,
                    value: m1.value,
                },
            }
        } else {
            MaxRegPhase::Write { loc: 1, value: m1 }
        };
    }
}

impl Process for MaxRegProc {
    fn action(&self) -> Action {
        match &self.phase {
            MaxRegPhase::Write { loc, value } => Action::Invoke(Op::single(
                *loc,
                Instruction::WriteMax(Value::Int(value.encode(self.y))),
            )),
            MaxRegPhase::Scan(dc) => Action::Invoke(dc.poised()),
            MaxRegPhase::Done(v) => Action::Decide(*v),
        }
    }

    fn absorb(&mut self, result: Value) {
        match &mut self.phase {
            MaxRegPhase::Write { .. } => self.phase = Self::fresh_scan(),
            MaxRegPhase::Scan(dc) => {
                if let Some(snap) = dc.absorb(result) {
                    self.handle_snapshot(snap);
                }
            }
            MaxRegPhase::Done(_) => unreachable!("decided processes take no steps"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbh_sim::{run_consensus, Machine, ObstructionScheduler, RandomScheduler};

    #[test]
    fn encoding_is_order_isomorphic() {
        let y = 11;
        let mut encs = Vec::new();
        for round in 0..4 {
            for value in 0..10 {
                encs.push((RoundValue { round, value }, RoundValue { round, value }.encode(y)));
            }
        }
        for (a, ea) in &encs {
            for (b, eb) in &encs {
                assert_eq!(a.cmp(b), ea.cmp(eb), "lex order == integer order");
            }
        }
    }

    #[test]
    fn encoding_roundtrip() {
        let y = 13;
        for round in 0..6 {
            for value in 0..12 {
                let rv = RoundValue { round, value };
                assert_eq!(RoundValue::decode(&rv.encode(y), y), rv);
            }
        }
    }

    #[test]
    fn two_processes_agree() {
        let protocol = MaxRegConsensus::new(2);
        for seed in 0..30 {
            for inputs in [[0, 1], [1, 0], [0, 0], [1, 1]] {
                let report =
                    run_consensus(&protocol, &inputs, RandomScheduler::seeded(seed), 100_000)
                        .unwrap();
                report.check(&inputs).unwrap();
                assert!(report.unanimous().is_some());
            }
        }
    }

    #[test]
    fn many_processes_many_seeds() {
        let protocol = MaxRegConsensus::new(6);
        let inputs = [3, 3, 0, 5, 1, 3];
        for seed in 0..20 {
            let report = run_consensus(&protocol, &inputs, RandomScheduler::seeded(seed), 500_000)
                .unwrap();
            report.check(&inputs).unwrap();
            assert!(report.unanimous().is_some());
            assert_eq!(report.locations_touched, 2, "exactly two max-registers");
        }
    }

    #[test]
    fn burst_adversary() {
        let protocol = MaxRegConsensus::new(5);
        let inputs = [4, 4, 2, 0, 1];
        for seed in 0..10 {
            let report = run_consensus(
                &protocol,
                &inputs,
                ObstructionScheduler::seeded(seed, 12),
                500_000,
            )
            .unwrap();
            report.check(&inputs).unwrap();
        }
    }

    #[test]
    fn unanimous_input_is_decided() {
        let protocol = MaxRegConsensus::new(4);
        let inputs = [2, 2, 2, 2];
        let report =
            run_consensus(&protocol, &inputs, RandomScheduler::seeded(0), 100_000).unwrap();
        assert_eq!(report.unanimous(), Some(2));
    }

    #[test]
    fn solo_run_decides_in_a_few_rounds() {
        let protocol = MaxRegConsensus::new(8);
        let mut machine = Machine::start(&protocol, &[7, 0, 1, 2, 3, 4, 5, 6]).unwrap();
        let decided = machine.run_solo(0, 200).unwrap();
        assert_eq!(decided, Some(7));
    }
}
