//! Heterogeneous buffers: capacities that differ per location (§6.2, end).
//!
//! The paper extends the `ℓ`-buffer lower bound to memories whose locations
//! have *different* capacities: for any obstruction-free `n`-process
//! consensus algorithm, the capacities must sum to at least `n−1`. The
//! matching upper bound generalizes Theorem 6.3: give each buffer of capacity
//! `cᵢ` its own history object shared by `cᵢ` processes; any capacity vector
//! with `Σ cᵢ ≥ n` supports `n`-consensus.
//!
//! [`HeteroBufferCounterFamily`] implements the counter; [`hetero_consensus`]
//! wraps it in racing counters.

use crate::buffer::{reconstruct_history, Record};
use crate::counter::{CounterEvent, CounterFamily, CounterRequest, CounterSim};
use crate::racing::RacingConsensus;
use cbh_bigint::BigInt;
use cbh_model::{Instruction, InstructionSet, MemorySpec, Op, Value};

/// An `m`-component counter over buffers with per-location capacities.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct HeteroBufferCounterFamily {
    m: usize,
    n: usize,
    caps: Vec<usize>,
}

impl HeteroBufferCounterFamily {
    /// An `m`-component counter for `n` processes over buffers of the given
    /// capacities.
    ///
    /// # Panics
    ///
    /// Panics if any argument is zero, any capacity is zero, or the
    /// capacities sum to less than `n` (the generalized Theorem 6.3
    /// requirement; compare the `Σ cᵢ ≥ n−1` lower bound).
    pub fn new(m: usize, n: usize, caps: Vec<usize>) -> Self {
        assert!(m > 0 && n > 0, "need components and processes");
        assert!(caps.iter().all(|&c| c > 0), "capacities must be positive");
        assert!(
            caps.iter().sum::<usize>() >= n,
            "capacities must sum to at least n = {n}"
        );
        HeteroBufferCounterFamily { m, n, caps }
    }

    /// The capacity vector.
    pub fn capacities(&self) -> &[usize] {
        &self.caps
    }

    /// The buffer hosting process `pid`: processes fill buffers in order,
    /// `caps[0]` processes into buffer 0, the next `caps[1]` into buffer 1, …
    pub fn buffer_of(&self, pid: usize) -> usize {
        let mut remaining = pid;
        for (b, &c) in self.caps.iter().enumerate() {
            if remaining < c {
                return b;
            }
            remaining -= c;
        }
        unreachable!("Σ caps ≥ n > pid");
    }
}

impl CounterFamily for HeteroBufferCounterFamily {
    type Sim = HeteroBufferCounterSim;

    fn m(&self) -> usize {
        self.m
    }

    fn name(&self) -> String {
        format!("hetero-buffers{:?}", self.caps)
    }

    fn memory_spec(&self) -> MemorySpec {
        let max = *self.caps.iter().max().expect("non-empty");
        MemorySpec::bounded(InstructionSet::Buffer(max), self.caps.len())
            .with_buffer_capacities(self.caps.clone())
    }

    fn spawn(&self, pid: usize) -> HeteroBufferCounterSim {
        assert!(pid < self.n, "pid out of range");
        HeteroBufferCounterSim {
            family: self.clone(),
            pid: pid as u64,
            buf: self.buffer_of(pid),
            seq: 0,
            my_counts: vec![0; self.m],
            pending: None,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum HPending {
    IncrementRead,
    IncrementWrite { history: Vec<Value> },
    Scan { cur: Vec<Value>, prev: Option<Vec<Value>> },
}

/// Per-process state of the heterogeneous buffer counter.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct HeteroBufferCounterSim {
    family: HeteroBufferCounterFamily,
    pid: u64,
    buf: usize,
    seq: u64,
    my_counts: Vec<u64>,
    pending: Option<HPending>,
}

impl HeteroBufferCounterSim {
    fn record(&self) -> Record {
        Record {
            writer: self.pid,
            seq: self.seq,
            payload: Value::seq(self.my_counts.iter().map(|&c| Value::int(c))),
        }
    }

    fn totals(&self, raw_buffers: &[Value]) -> Vec<BigInt> {
        let mut totals = vec![BigInt::zero(); self.family.m];
        for raw in raw_buffers {
            let entries = raw.as_seq().expect("buffer read returns a sequence");
            let history = reconstruct_history(entries);
            let mut seen = std::collections::BTreeSet::new();
            for rec in history.iter().rev().map(Record::decode) {
                if !seen.insert(rec.writer) {
                    continue;
                }
                let counts = rec.payload.as_seq().expect("tallies are sequences");
                for (v, c) in counts.iter().enumerate() {
                    totals[v] += &BigInt::from(c.as_u64().expect("tally"));
                }
            }
        }
        totals
    }
}

impl CounterSim for HeteroBufferCounterSim {
    fn m(&self) -> usize {
        self.family.m
    }

    fn supports_decrement(&self) -> bool {
        false
    }

    fn start(&mut self, req: CounterRequest) {
        assert!(self.pending.is_none(), "counter operation already in flight");
        self.pending = Some(match req {
            CounterRequest::Increment(v) => {
                self.my_counts[v] += 1;
                HPending::IncrementRead
            }
            CounterRequest::Scan => HPending::Scan {
                cur: Vec::new(),
                prev: None,
            },
            CounterRequest::Decrement(_) => panic!("buffer counter has no decrement"),
        });
    }

    fn poised(&self) -> Op {
        match self.pending.as_ref().expect("no counter operation in flight") {
            HPending::IncrementRead => Op::single(self.buf, Instruction::BufferRead),
            HPending::IncrementWrite { history } => Op::single(
                self.buf,
                Instruction::BufferWrite(Value::pair(
                    Value::seq(history.iter().cloned()),
                    self.record().encode(),
                )),
            ),
            HPending::Scan { cur, .. } => Op::single(cur.len(), Instruction::BufferRead),
        }
    }

    fn absorb(&mut self, result: Value) -> Option<CounterEvent> {
        let pending = self.pending.as_mut().expect("no counter operation in flight");
        match pending {
            HPending::IncrementRead => {
                let entries = result.as_seq().expect("buffer read returns a sequence");
                let history = reconstruct_history(entries);
                *pending = HPending::IncrementWrite { history };
                None
            }
            HPending::IncrementWrite { .. } => {
                self.seq += 1;
                self.pending = None;
                Some(CounterEvent::Done)
            }
            HPending::Scan { cur, prev } => {
                cur.push(result);
                if cur.len() < self.family.caps.len() {
                    return None;
                }
                let finished = std::mem::take(cur);
                if prev.as_ref() == Some(&finished) {
                    let totals = self.totals(&finished);
                    self.pending = None;
                    Some(CounterEvent::Counts(totals))
                } else {
                    *prev = Some(finished);
                    None
                }
            }
        }
    }
}

/// `n`-consensus over buffers with the given capacity vector (`Σ caps ≥ n`):
/// the heterogeneous generalization of Theorem 6.3.
///
/// # Examples
///
/// ```
/// use cbh_core::hetero::hetero_consensus;
/// use cbh_sim::{run_consensus, RandomScheduler};
///
/// // 5 processes over one 3-buffer and one 2-buffer: 3 + 2 = 5 = n.
/// let protocol = hetero_consensus(5, vec![3, 2]);
/// let inputs = [4, 0, 2, 2, 4];
/// let report = run_consensus(&protocol, &inputs, RandomScheduler::seeded(6), 4_000_000)
///     .unwrap();
/// report.check(&inputs).unwrap();
/// assert_eq!(report.locations_touched, 2);
/// ```
pub fn hetero_consensus(n: usize, caps: Vec<usize>) -> RacingConsensus<HeteroBufferCounterFamily> {
    RacingConsensus::new(HeteroBufferCounterFamily::new(n, n, caps), n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbh_sim::{run_consensus, RandomScheduler, RoundRobinScheduler};

    #[test]
    fn buffer_assignment_fills_in_order() {
        let f = HeteroBufferCounterFamily::new(2, 6, vec![3, 1, 2]);
        assert_eq!(
            (0..6).map(|p| f.buffer_of(p)).collect::<Vec<_>>(),
            vec![0, 0, 0, 1, 2, 2]
        );
    }

    #[test]
    fn memory_has_per_location_capacities() {
        let f = HeteroBufferCounterFamily::new(2, 4, vec![3, 1]);
        let spec = f.memory_spec();
        assert_eq!(spec.buffer_capacity_at(0), Some(3));
        assert_eq!(spec.buffer_capacity_at(1), Some(1));
    }

    #[test]
    #[should_panic(expected = "sum to at least")]
    fn undersized_capacities_rejected() {
        let _ = HeteroBufferCounterFamily::new(2, 5, vec![2, 2]);
    }

    #[test]
    fn consensus_over_mixed_capacities() {
        for caps in [vec![3, 2], vec![1, 1, 1, 1, 1], vec![4, 1], vec![5]] {
            let protocol = hetero_consensus(5, caps.clone());
            let inputs = [4, 0, 2, 2, 4];
            for seed in 0..5 {
                let report =
                    run_consensus(&protocol, &inputs, RandomScheduler::seeded(seed), 8_000_000)
                        .unwrap();
                report.check(&inputs).unwrap();
                assert_eq!(report.locations_touched, caps.len(), "caps {caps:?}");
            }
        }
    }

    #[test]
    fn round_robin_mixed() {
        let protocol = hetero_consensus(4, vec![2, 1, 1]);
        let inputs = [3, 3, 0, 1];
        let report = run_consensus(&protocol, &inputs, RoundRobinScheduler::new(), 8_000_000)
            .unwrap();
        report.check(&inputs).unwrap();
    }

    #[test]
    fn exact_sum_matches_lower_bound_frontier() {
        // Σ caps = n exactly — one fewer total capacity would cross the
        // paper's Σ ≥ n−1 lower bound's comfort zone.
        let protocol = hetero_consensus(6, vec![2, 2, 2]);
        let inputs = [5, 1, 1, 3, 0, 5];
        let report =
            run_consensus(&protocol, &inputs, RandomScheduler::seeded(12), 8_000_000).unwrap();
        report.check(&inputs).unwrap();
        assert_eq!(report.locations_touched, 3);
    }
}
