//! The bit-by-bit reduction from binary to `n`-valued consensus (Lemma 5.2)
//! and the protocols built from it (Theorems 5.3 and 9.4).
//!
//! Processes agree on the output value one bit per *round*, over
//! `⌈log₂ n⌉` asynchronous rounds. Round `i` (except the last) owns two
//! *designated locations* — a 0-location and a 1-location — plus a block of
//! `c` locations running an embedded obstruction-free **binary** consensus:
//!
//! 1. write your current value into the designated location matching bit `i`
//!    of that value;
//! 2. run the binary consensus with bit `i` of your value as input;
//! 3. if the agreed bit `vᵢ` differs from yours, adopt a value recorded in the
//!    designated `vᵢ`-location (one must exist — otherwise `¬vᵢ` could not
//!    have been agreed).
//!
//! All values entering round `i+1` are inputs that agree on bits `0..i`, so
//! after all rounds everyone holds the same input value. The last round needs
//! no designated locations (its agreed bit pins the value directly), saving
//! two locations: `(c+2)·⌈log₂ n⌉ − 2` in total with one-word designated
//! locations.
//!
//! Two designated-location codecs exist because Theorem 9.4's sets cannot
//! write arbitrary values: [`DesignatedCodec::Direct`] stores `value+1` in one
//! word, while [`DesignatedCodec::Unary`] uses `n` single-bit locations and
//! records `value` by setting the `(value+1)`-st (via `write(1)` or
//! `test-and-set`), exactly as the paper describes.

use crate::counter::CounterFamily;
use crate::increment::{increment_binary, IncrementCounterFamily, IncrementFlavor};
use crate::racing::{RacingConsensus, RacingProc};
use crate::tracks::{TrackCounterFamily, TrackLayout};
use crate::util::{ceil_log2, BitWrite, OffsetProc};
use cbh_model::{
    Action, Instruction, InstructionSet, MemorySpec, Op, Process, Protocol, Value,
};
use std::fmt::Debug;
use std::hash::Hash;

/// A binary-consensus building block usable inside [`BitByBit`].
///
/// Implementations must confine themselves to locations `0..locations()`
/// with all-zero initial words; [`BitByBit`] relocates them into per-round
/// blocks.
pub trait BinaryFamily: Clone + Debug + PartialEq + Eq + Hash {
    /// The embedded process type.
    type Proc: Process;

    /// Human-readable name.
    fn name(&self) -> String;

    /// Number of locations `c` one instance occupies.
    fn locations(&self) -> usize;

    /// Spawns a process with the given input bit.
    fn spawn(&self, pid: usize, bit: u64) -> Self::Proc;
}

/// Racing-counters binary consensus (over any 2-component counter family) as
/// a [`BinaryFamily`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RacingBinary<F: CounterFamily>(RacingConsensus<F>);

impl<F: CounterFamily> RacingBinary<F> {
    /// Wraps a racing-counters protocol whose counter has `m = 2` components
    /// and a bounded memory.
    ///
    /// # Panics
    ///
    /// Panics if the family is not binary or its memory is unbounded.
    pub fn new(inner: RacingConsensus<F>) -> Self {
        assert_eq!(inner.family().m(), 2, "binary consensus needs m = 2");
        assert!(
            inner.memory_spec().bounded_len().is_some(),
            "BitByBit blocks need bounded inner memories"
        );
        RacingBinary(inner)
    }
}

impl<F: CounterFamily + Debug + PartialEq + Eq + Hash> BinaryFamily for RacingBinary<F> {
    type Proc = RacingProc<F::Sim>;

    fn name(&self) -> String {
        self.0.name()
    }

    fn locations(&self) -> usize {
        self.0.memory_spec().bounded_len().expect("bounded")
    }

    fn spawn(&self, pid: usize, bit: u64) -> Self::Proc {
        self.0.spawn(pid, bit)
    }
}

/// How a round's designated locations store a recorded value in `0..n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DesignatedCodec {
    /// One word per designated location, storing `value + 1` (0 = empty).
    Direct,
    /// `n` single-bit locations per designated location; recording `value`
    /// sets location `value`. Needed when only `write(1)`/`test-and-set` are
    /// available (Theorem 9.4).
    Unary {
        /// The value domain size `n`.
        n: usize,
        /// How a bit gets set.
        write: BitWrite,
    },
}

impl DesignatedCodec {
    /// Locations per designated slot.
    pub fn slots(&self) -> usize {
        match self {
            DesignatedCodec::Direct => 1,
            DesignatedCodec::Unary { n, .. } => *n,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct DesWriter {
    codec: DesignatedCodec,
    base: usize,
    value: u64,
}

impl DesWriter {
    fn poised(&self) -> Op {
        match self.codec {
            DesignatedCodec::Direct => {
                Op::single(self.base, Instruction::write(self.value + 1))
            }
            DesignatedCodec::Unary { write, .. } => {
                Op::single(self.base + self.value as usize, write.instruction())
            }
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct DesReader {
    codec: DesignatedCodec,
    base: usize,
    pos: usize,
}

impl DesReader {
    fn poised(&self) -> Op {
        match self.codec {
            DesignatedCodec::Direct => Op::read(self.base),
            DesignatedCodec::Unary { .. } => Op::read(self.base + self.pos),
        }
    }

    /// Consumes a read result; `Some(value)` once a recorded value is found.
    fn absorb(&mut self, result: Value) -> Option<u64> {
        match self.codec {
            DesignatedCodec::Direct => {
                let w = result.as_u64().expect("designated words hold naturals");
                (w > 0).then(|| w - 1) // 0 = still empty: re-read
            }
            DesignatedCodec::Unary { n, .. } => {
                let bit = result.as_u64().expect("designated bits");
                if bit == 1 {
                    Some(self.pos as u64)
                } else {
                    self.pos = (self.pos + 1) % n;
                    None
                }
            }
        }
    }
}

/// The Lemma 5.2 protocol: `n`-valued consensus from `⌈log₂ n⌉` rounds of an
/// embedded binary consensus.
///
/// # Examples
///
/// Theorem 5.3 — `n`-consensus on `O(log n)` `{read, write, increment}`
/// locations:
///
/// ```
/// use cbh_core::bitwise::increment_log_consensus;
/// use cbh_core::increment::IncrementFlavor;
/// use cbh_sim::{run_consensus, RandomScheduler};
///
/// let protocol = increment_log_consensus(8, IncrementFlavor::Increment);
/// let inputs = [7, 7, 0, 3, 3, 3, 1, 5];
/// let report = run_consensus(&protocol, &inputs, RandomScheduler::seeded(2), 4_000_000)
///     .unwrap();
/// report.check(&inputs).unwrap();
/// // (c+2)·⌈log₂ 8⌉ − 2 = 4·3 − 2 = 10 locations.
/// assert_eq!(report.locations_allocated, 10);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BitByBit<B: BinaryFamily> {
    n: usize,
    rounds: u32,
    codec: DesignatedCodec,
    family: B,
    iset: InstructionSet,
}

impl<B: BinaryFamily> BitByBit<B> {
    /// Builds the reduction for `n`-valued consensus among `n` processes.
    ///
    /// `iset` is the uniform instruction set of the whole memory; the codec's
    /// and the family's instructions must all belong to it.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn new(n: usize, codec: DesignatedCodec, family: B, iset: InstructionSet) -> Self {
        assert!(n >= 2, "consensus needs at least two processes");
        BitByBit {
            n,
            rounds: ceil_log2(n as u64),
            codec,
            family,
            iset,
        }
    }

    /// Number of bit-agreement rounds `⌈log₂ n⌉`.
    pub fn rounds(&self) -> u32 {
        self.rounds
    }

    fn block(&self) -> usize {
        2 * self.codec.slots() + self.family.locations()
    }

    /// Total memory: full blocks for all but the last round, which has no
    /// designated locations.
    pub fn total_locations(&self) -> usize {
        (self.rounds as usize - 1) * self.block() + self.family.locations()
    }

    fn round_base(&self, round: u32) -> usize {
        round as usize * self.block()
    }

    fn inner_base(&self, round: u32) -> usize {
        if round == self.rounds - 1 {
            self.round_base(round)
        } else {
            self.round_base(round) + 2 * self.codec.slots()
        }
    }

    fn designated_base(&self, round: u32, bit: u64) -> usize {
        debug_assert!(round < self.rounds - 1, "last round has no designated slots");
        self.round_base(round) + bit as usize * self.codec.slots()
    }
}

impl<B: BinaryFamily> Protocol for BitByBit<B> {
    type Proc = BitByBitProc<B>;

    fn name(&self) -> String {
        format!("bit-by-bit[{}]", self.family.name())
    }

    fn n(&self) -> usize {
        self.n
    }

    fn domain(&self) -> u64 {
        self.n as u64
    }

    fn memory_spec(&self) -> MemorySpec {
        MemorySpec::bounded(self.iset, self.total_locations())
    }

    fn spawn(&self, pid: usize, input: u64) -> BitByBitProc<B> {
        assert!(input < self.n as u64, "input out of domain");
        let mut proc = BitByBitProc {
            protocol: self.clone(),
            pid,
            value: input,
            round: 0,
            phase: BitPhase::Done(0), // placeholder, replaced below
        };
        proc.enter_round();
        proc
    }
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum BitPhase<P> {
    Des(DesWriter),
    Inner(OffsetProc<P>),
    Read(DesReader),
    Done(u64),
}

/// Per-process state of the bit-by-bit reduction.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BitByBitProc<B: BinaryFamily> {
    protocol: BitByBit<B>,
    pid: usize,
    value: u64,
    round: u32,
    phase: BitPhase<B::Proc>,
}

impl<B: BinaryFamily> BitByBitProc<B> {
    fn my_bit(&self) -> u64 {
        (self.value >> self.round) & 1
    }

    /// Starts the current round: designated write first (except in the last
    /// round, which goes straight to the embedded binary consensus).
    fn enter_round(&mut self) {
        let p = &self.protocol;
        if self.round == p.rounds - 1 {
            self.start_inner();
        } else {
            self.phase = BitPhase::Des(DesWriter {
                codec: p.codec,
                base: p.designated_base(self.round, self.my_bit()),
                value: self.value,
            });
        }
    }

    fn start_inner(&mut self) {
        let p = &self.protocol;
        let inner = p.family.spawn(self.pid, self.my_bit());
        self.phase = BitPhase::Inner(OffsetProc::new(inner, p.inner_base(self.round)));
        self.drain_inner_decision();
    }

    /// If the embedded instance has (instantly) decided, move on.
    fn drain_inner_decision(&mut self) {
        if let BitPhase::Inner(inner) = &self.phase {
            if let Action::Decide(bit) = inner.action() {
                self.finish_round(bit);
            }
        }
    }

    fn finish_round(&mut self, agreed: u64) {
        let p = self.protocol.clone();
        if self.round == p.rounds - 1 {
            // Last round: the agreed bit pins the value — everyone already
            // agrees on all lower bits, so no designated read is needed (this
            // is the "save two locations" observation).
            let value = (self.value & !(1 << self.round)) | (agreed << self.round);
            self.phase = BitPhase::Done(value);
        } else if self.my_bit() == agreed {
            self.next_round();
        } else {
            self.phase = BitPhase::Read(DesReader {
                codec: p.codec,
                base: p.designated_base(self.round, agreed),
                pos: 0,
            });
        }
    }

    fn next_round(&mut self) {
        self.round += 1;
        debug_assert!(self.round < self.protocol.rounds);
        self.enter_round();
    }
}

impl<B: BinaryFamily> Process for BitByBitProc<B> {
    fn action(&self) -> Action {
        match &self.phase {
            BitPhase::Des(w) => Action::Invoke(w.poised()),
            BitPhase::Inner(p) => p.action(),
            BitPhase::Read(r) => Action::Invoke(r.poised()),
            BitPhase::Done(v) => Action::Decide(*v),
        }
    }

    fn absorb(&mut self, result: Value) {
        match &mut self.phase {
            BitPhase::Des(_) => self.start_inner(),
            BitPhase::Inner(p) => {
                p.absorb(result);
                self.drain_inner_decision();
            }
            BitPhase::Read(r) => {
                if let Some(adopted) = r.absorb(result) {
                    debug_assert!(adopted < self.protocol.n as u64, "adopted an input value");
                    self.value = adopted;
                    self.next_round();
                }
            }
            BitPhase::Done(_) => unreachable!("decided processes take no steps"),
        }
    }
}

/// Theorem 5.3: `n`-consensus on `(2+2)·⌈log₂ n⌉ − 2 = O(log n)` locations
/// supporting `{read, write(x), increment}` (or the fetch-and-increment
/// variant).
pub fn increment_log_consensus(
    n: usize,
    flavor: IncrementFlavor,
) -> BitByBit<RacingBinary<IncrementCounterFamily>> {
    BitByBit::new(
        n,
        DesignatedCodec::Direct,
        RacingBinary::new(increment_binary(n, flavor)),
        flavor.iset(),
    )
}

/// Theorem 9.4 (with the \[Bow11\] substitution of `DESIGN.md`): `n`-consensus
/// on `O(n log n)` locations supporting `{read, write(1), write(0)}`.
///
/// `cells_per_track` bounds each embedded racing track (default in
/// [`write01_consensus`]: `32n`); overflowing a track panics — see
/// [`crate::tracks`].
pub fn write01_consensus_with(
    n: usize,
    cells_per_track: usize,
) -> BitByBit<RacingBinary<TrackCounterFamily>> {
    binary_tracks_bit_by_bit(n, cells_per_track, BitWrite::Write1, InstructionSet::ReadWrite01)
}

/// [`write01_consensus_with`] with the default `32n` cells per track —
/// generous enough for heavy adversarial contention while keeping the total
/// space `O(n log n)`.
pub fn write01_consensus(n: usize) -> BitByBit<RacingBinary<TrackCounterFamily>> {
    write01_consensus_with(n, 32 * n)
}

/// Theorem 9.4, test-and-set flavour: `n`-consensus on `O(n log n)` locations
/// supporting `{read, test-and-set, reset}` (`test-and-set` plays `write(1)`;
/// `reset` is available but the construction never needs it — see DESIGN.md).
pub fn tas_reset_consensus(n: usize) -> BitByBit<RacingBinary<TrackCounterFamily>> {
    binary_tracks_bit_by_bit(n, 32 * n, BitWrite::TestAndSet, InstructionSet::ReadTasReset)
}

fn binary_tracks_bit_by_bit(
    n: usize,
    cells: usize,
    write: BitWrite,
    iset: InstructionSet,
) -> BitByBit<RacingBinary<TrackCounterFamily>> {
    let tracks = TrackCounterFamily::new(2, write, TrackLayout::Bounded { cells });
    BitByBit::new(
        n,
        DesignatedCodec::Unary { n, write },
        RacingBinary::new(RacingConsensus::new(tracks, n)),
        iset,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::ceil_log2;
    use cbh_sim::{run_consensus, RandomScheduler, RoundRobinScheduler};

    #[test]
    fn increment_layout_matches_lemma_5_2_formula() {
        for n in [2usize, 3, 4, 8, 9, 16, 33] {
            let p = increment_log_consensus(n, IncrementFlavor::Increment);
            let rounds = ceil_log2(n as u64) as usize;
            assert_eq!(p.total_locations(), (2 + 2) * rounds - 2, "n={n}");
        }
    }

    #[test]
    fn increment_consensus_agrees_across_seeds() {
        let protocol = increment_log_consensus(5, IncrementFlavor::Increment);
        let inputs = [4, 4, 0, 2, 1];
        for seed in 0..10 {
            let report =
                run_consensus(&protocol, &inputs, RandomScheduler::seeded(seed), 4_000_000)
                    .unwrap();
            report.check(&inputs).unwrap();
            assert!(report.unanimous().is_some());
        }
    }

    #[test]
    fn fetch_and_increment_flavor_works() {
        let protocol = increment_log_consensus(4, IncrementFlavor::FetchAndIncrement);
        let inputs = [3, 0, 0, 2];
        for seed in 0..6 {
            let report =
                run_consensus(&protocol, &inputs, RandomScheduler::seeded(seed), 4_000_000)
                    .unwrap();
            report.check(&inputs).unwrap();
        }
    }

    #[test]
    fn two_processes_is_plain_binary() {
        let protocol = increment_log_consensus(2, IncrementFlavor::Increment);
        assert_eq!(protocol.total_locations(), 2, "one round, no designated");
        for inputs in [[0u64, 1], [1, 0], [1, 1], [0, 0]] {
            let report =
                run_consensus(&protocol, &inputs, RandomScheduler::seeded(1), 1_000_000).unwrap();
            report.check(&inputs).unwrap();
        }
    }

    #[test]
    fn write01_consensus_agrees() {
        let protocol = write01_consensus(4);
        let inputs = [2, 3, 3, 0];
        for seed in 0..6 {
            let report =
                run_consensus(&protocol, &inputs, RandomScheduler::seeded(seed), 4_000_000)
                    .unwrap();
            report.check(&inputs).unwrap();
            assert!(report.unanimous().is_some());
        }
    }

    #[test]
    fn write01_space_is_o_n_log_n() {
        for n in [4usize, 8, 16] {
            let p = write01_consensus(n);
            let rounds = ceil_log2(n as u64) as usize;
            // Per full round: 2 unary slots of n + two 32n-cell tracks.
            let expected = (rounds - 1) * (2 * n + 2 * 32 * n) + 2 * 32 * n;
            assert_eq!(p.total_locations(), expected, "n={n}");
            assert!(p.total_locations() <= 66 * n * rounds);
        }
    }

    #[test]
    fn tas_reset_consensus_agrees() {
        let protocol = tas_reset_consensus(4);
        let inputs = [1, 1, 2, 0];
        for seed in 0..6 {
            let report =
                run_consensus(&protocol, &inputs, RandomScheduler::seeded(seed), 4_000_000)
                    .unwrap();
            report.check(&inputs).unwrap();
        }
    }

    #[test]
    fn round_robin_full_domain() {
        let protocol = increment_log_consensus(8, IncrementFlavor::Increment);
        let inputs = [0, 1, 2, 3, 4, 5, 6, 7];
        let report =
            run_consensus(&protocol, &inputs, RoundRobinScheduler::new(), 8_000_000).unwrap();
        report.check(&inputs).unwrap();
        assert!(report.unanimous().is_some());
    }

    #[test]
    fn unanimity_whole_domain() {
        let protocol = increment_log_consensus(4, IncrementFlavor::Increment);
        for v in 0..4u64 {
            let inputs = [v; 4];
            let report =
                run_consensus(&protocol, &inputs, RandomScheduler::seeded(7), 4_000_000).unwrap();
            assert_eq!(report.unanimous(), Some(v), "validity pins unanimous input");
        }
    }
}
