//! Algorithm 1: anonymous `n`-consensus from `n−1` swap/read locations (§8).
//!
//! Values `0..n` race to complete *laps*. Every process keeps a local view
//! `ℓ₀…ℓₙ₋₁` of each value's current lap, repeatedly scans the `n−1` shared
//! locations (double collect over tagged swap values), merges everything it
//! has seen (including the return values of its own swaps) into its view, and
//! then:
//!
//! - if every location holds exactly its view and the leading value is ≥ 2
//!   laps ahead of all others, it decides that value (lines 8–10);
//! - if every location holds its view but the lead is < 2, the leader value
//!   advances one lap locally (line 11) and the process starts installing the
//!   new view, swapping it into the first divergent location (lines 12–13);
//! - otherwise it swaps its view into the first location that differs.
//!
//! The algorithm is *anonymous*: process ids never influence control flow (the
//! id+sequence tag on swapped values exists only to make the double-collect
//! scan linearizable, exactly as in the paper).

use crate::util::{DoubleCollect, ReadKind};
use cbh_model::{Action, Instruction, InstructionSet, MemorySpec, Op, Process, Protocol, Value};

/// Anonymous swap/read `n`-consensus on `n−1` locations (Theorem 8.8).
///
/// # Examples
///
/// ```
/// use cbh_core::swap::SwapConsensus;
/// use cbh_sim::{run_consensus, RandomScheduler};
///
/// let protocol = SwapConsensus::new(4);
/// let inputs = [2, 2, 0, 3];
/// let report = run_consensus(&protocol, &inputs, RandomScheduler::seeded(8), 1_000_000)
///     .unwrap();
/// report.check(&inputs).unwrap();
/// assert_eq!(report.locations_touched, 3, "n − 1 locations");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwapConsensus {
    n: usize,
}

impl SwapConsensus {
    /// Swap consensus among `n ≥ 2` processes on `n−1` locations.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2, "consensus needs at least two processes");
        SwapConsensus { n }
    }
}

impl Protocol for SwapConsensus {
    type Proc = SwapProc;

    fn name(&self) -> String {
        "swap-laps".into()
    }

    fn n(&self) -> usize {
        self.n
    }

    fn domain(&self) -> u64 {
        self.n as u64
    }

    fn memory_spec(&self) -> MemorySpec {
        let zeros = encode_tagged(self.n, u64::MAX, 0, &vec![0; self.n]);
        MemorySpec::bounded(InstructionSet::ReadSwap, self.n - 1)
            .with_initial(vec![zeros; self.n - 1])
    }

    fn spawn(&self, pid: usize, input: u64) -> SwapProc {
        assert!(input < self.n as u64, "input out of domain");
        let mut laps = vec![0u64; self.n];
        laps[input as usize] = 1; // line 1: ℓ_x ← 1
        SwapProc {
            pid: pid as u64,
            n: self.n,
            laps,
            swap_result: vec![0; self.n],
            seq: 0,
            phase: SwapPhase::Scan(new_scan(self.n)),
        }
    }
}

fn new_scan(n: usize) -> DoubleCollect {
    DoubleCollect::new((0..n - 1).collect(), ReadKind::Read)
}

/// Encodes `(pid, seq, laps)` as the shared-location value. The pid/seq tag
/// makes every swapped value unique so double collect linearizes (§8).
fn encode_tagged(n: usize, pid: u64, seq: u64, laps: &[u64]) -> Value {
    debug_assert_eq!(laps.len(), n);
    let mut items = Vec::with_capacity(n + 2);
    items.push(Value::int(pid));
    items.push(Value::int(seq));
    items.extend(laps.iter().map(|&l| Value::int(l)));
    Value::Seq(items)
}

/// Extracts the lap vector from a shared-location value.
fn decode_laps(v: &Value) -> Vec<u64> {
    let items = v.as_seq().expect("locations hold tagged lap vectors");
    items[2..]
        .iter()
        .map(|l| l.as_u64().expect("laps are naturals"))
        .collect()
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum SwapPhase {
    Scan(DoubleCollect),
    Swap { loc: usize },
    Done(u64),
}

/// Per-process state of Algorithm 1.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SwapProc {
    pid: u64,
    n: usize,
    /// Local view `ℓ₀…ℓₙ₋₁` of each value's lap.
    laps: Vec<u64>,
    /// Lap vector from this process's last swap return value (`s`).
    swap_result: Vec<u64>,
    seq: u64,
    phase: SwapPhase,
}

impl SwapProc {
    /// Lines 4–13, run after a completed scan.
    fn after_scan(&mut self, snap: Vec<Value>) {
        let collected: Vec<Vec<u64>> = snap.iter().map(decode_laps).collect();
        // Line 5: ℓ_v ← max(ℓ_v, s[v], a_j[v] for all j).
        for v in 0..self.n {
            let mut best = self.laps[v].max(self.swap_result[v]);
            for a in &collected {
                best = best.max(a[v]);
            }
            self.laps[v] = best;
        }
        // Lines 6–7: leading value, smallest index first.
        let lead = *self.laps.iter().max().expect("n ≥ 2 components");
        let v_star = self.laps.iter().position(|&l| l == lead).expect("max exists");
        // Line 8: does every location hold exactly our view?
        if collected.iter().all(|a| *a == self.laps) {
            // Line 9: is v* at least two laps ahead of every other value?
            if self
                .laps
                .iter()
                .enumerate()
                .all(|(v, &l)| v == v_star || lead >= l + 2)
            {
                self.phase = SwapPhase::Done(v_star as u64);
                return;
            }
            // Line 11: v* advances a lap.
            self.laps[v_star] += 1;
        }
        // Line 12: first location whose contents differ from our (new) view.
        let loc = collected
            .iter()
            .position(|a| *a != self.laps)
            .unwrap_or(0);
        self.phase = SwapPhase::Swap { loc };
    }
}

impl Process for SwapProc {
    fn action(&self) -> Action {
        match &self.phase {
            SwapPhase::Scan(dc) => Action::Invoke(dc.poised()),
            SwapPhase::Swap { loc } => Action::Invoke(Op::single(
                *loc,
                Instruction::Swap(encode_tagged(self.n, self.pid, self.seq, &self.laps)),
            )),
            SwapPhase::Done(v) => Action::Decide(*v),
        }
    }

    fn absorb(&mut self, result: Value) {
        match &mut self.phase {
            SwapPhase::Scan(dc) => {
                if let Some(snap) = dc.absorb(result) {
                    self.after_scan(snap);
                }
            }
            SwapPhase::Swap { .. } => {
                // Line 13: remember the swapped-out lap vector in `s`.
                self.swap_result = decode_laps(&result);
                self.seq += 1;
                self.phase = SwapPhase::Scan(new_scan(self.n));
            }
            SwapPhase::Done(_) => unreachable!("decided processes take no steps"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbh_sim::{run_consensus, Machine, ObstructionScheduler, RandomScheduler};

    #[test]
    fn two_process_all_input_mixes() {
        let protocol = SwapConsensus::new(2);
        for inputs in [[0u64, 0], [0, 1], [1, 0], [1, 1]] {
            for seed in 0..20 {
                let report =
                    run_consensus(&protocol, &inputs, RandomScheduler::seeded(seed), 500_000)
                        .unwrap();
                report.check(&inputs).unwrap();
                assert!(report.unanimous().is_some());
                assert_eq!(report.locations_touched, 1, "n−1 = 1 location");
            }
        }
    }

    #[test]
    fn n_consensus_under_adversaries() {
        let protocol = SwapConsensus::new(5);
        let inputs = [4, 0, 2, 2, 1];
        for seed in 0..10 {
            let report =
                run_consensus(&protocol, &inputs, RandomScheduler::seeded(seed), 2_000_000)
                    .unwrap();
            report.check(&inputs).unwrap();
            assert_eq!(report.locations_touched, 4);
        }
        for seed in 0..5 {
            let report = run_consensus(
                &protocol,
                &inputs,
                ObstructionScheduler::seeded(seed, 25),
                2_000_000,
            )
            .unwrap();
            report.check(&inputs).unwrap();
        }
    }

    #[test]
    fn unanimity() {
        let protocol = SwapConsensus::new(3);
        let report =
            run_consensus(&protocol, &[2, 2, 2], RandomScheduler::seeded(4), 1_000_000).unwrap();
        assert_eq!(report.unanimous(), Some(2));
    }

    #[test]
    fn solo_decides_within_3n_minus_2_scans() {
        // Lemma 8.7: a solo execution decides after at most 3n−2 scans. Each
        // scan here costs at least n−1 reads (double collect may repeat), and
        // each swap is 1 step; bound total steps generously but verify the
        // decision and count scans via step accounting on a quiet memory:
        // solo ⇒ every double collect stabilizes after exactly 2 collects.
        for n in [2usize, 3, 5, 8] {
            let protocol = SwapConsensus::new(n);
            let inputs: Vec<u64> = (0..n as u64).collect();
            let mut machine = Machine::start(&protocol, &inputs).unwrap();
            let decided = machine.run_solo(0, 1_000_000).unwrap();
            assert_eq!(decided, Some(0), "solo process decides its own input");
            // Steps: scans · 2(n−1) reads + swaps ≤ (3n−2)·2(n−1) + 3(n−1).
            let bound = (3 * n as u64 - 2) * 2 * (n as u64 - 1) + 3 * (n as u64 - 1);
            assert!(
                machine.steps() <= bound,
                "n={n}: {} steps > Lemma 8.7 bound {bound}",
                machine.steps()
            );
        }
    }

    #[test]
    fn anonymity_ids_only_in_tags() {
        // Two processes spawned with the same input differ only in pid tag.
        let protocol = SwapConsensus::new(3);
        let a = protocol.spawn(0, 1);
        let b = protocol.spawn(1, 1);
        assert_eq!(a.laps, b.laps);
        assert_eq!(a.swap_result, b.swap_result);
    }
}
