//! The introduction's "combination beats the parts" examples.
//!
//! Herlihy's hierarchy assigns consensus number 2 to objects supporting only
//! `fetch-and-add` or only `test-and-set`, yet a single location supporting
//! *both* solves wait-free binary consensus for any `n` ([`FaaTasConsensus`]).
//! Likewise `read`/`decrement`/`multiply` each have consensus number 1 in
//! pairs, but all three together solve it too ([`DecMulConsensus`]). These
//! examples are the paper's motivation for abandoning the object-based
//! hierarchy, and they sit in Table 1's `SP = 1` row.

use cbh_model::{Action, Instruction, InstructionSet, MemorySpec, Op, Process, Protocol, Value};

/// Wait-free binary consensus from `{fetch-and-add(2), test-and-set()}`.
///
/// One location initialised to 0. Input-0 processes perform
/// `fetch-and-add(2)`; input-1 processes perform `test-and-set()`. A process
/// decides 1 if the value it got back is odd, or if it got 0 back from
/// `test-and-set()`; otherwise it decides 0.
///
/// Why it works: the location's parity records whether a `test-and-set()`
/// arrived *first* (setting the low bit that `fetch-and-add(2)` can never
/// clear). Everyone therefore agrees on who won the race.
///
/// # Examples
///
/// ```
/// use cbh_core::intro::FaaTasConsensus;
/// use cbh_sim::{run_consensus, RandomScheduler};
///
/// let protocol = FaaTasConsensus::new(6);
/// let inputs = [0, 1, 0, 1, 1, 0];
/// let report = run_consensus(&protocol, &inputs, RandomScheduler::seeded(1), 100).unwrap();
/// report.check(&inputs).unwrap();
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaaTasConsensus {
    n: usize,
}

impl FaaTasConsensus {
    /// Binary consensus among `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2, "consensus needs at least two processes");
        FaaTasConsensus { n }
    }
}

impl Protocol for FaaTasConsensus {
    type Proc = FaaTasProc;

    fn name(&self) -> String {
        "intro-faa-tas".into()
    }

    fn n(&self) -> usize {
        self.n
    }

    fn domain(&self) -> u64 {
        2
    }

    fn memory_spec(&self) -> MemorySpec {
        MemorySpec::bounded(InstructionSet::FaaTas, 1)
    }

    fn spawn(&self, _pid: usize, input: u64) -> FaaTasProc {
        assert!(input < 2, "binary consensus takes inputs 0 and 1");
        FaaTasProc {
            input,
            decided: None,
        }
    }
}

/// Per-process state of the fetch-and-add/test-and-set protocol.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FaaTasProc {
    input: u64,
    decided: Option<u64>,
}

impl Process for FaaTasProc {
    fn action(&self) -> Action {
        match self.decided {
            Some(v) => Action::Decide(v),
            None if self.input == 0 => {
                Action::Invoke(Op::single(0, Instruction::fetch_and_add(2)))
            }
            None => Action::Invoke(Op::single(0, Instruction::TestAndSet)),
        }
    }

    fn absorb(&mut self, result: Value) {
        let got = result.as_u64().expect("location holds small integers");
        let one = got % 2 == 1 || (self.input == 1 && got == 0);
        self.decided = Some(u64::from(one));
    }
}

/// Binary consensus from `{read(), decrement(), multiply(x)}`.
///
/// One location initialised to 1. Input-0 processes perform `decrement()`;
/// input-1 processes perform `multiply(n)`; every process then performs
/// `read()` and decides 1 if the value is positive, 0 otherwise.
///
/// Why it works: if the *first* modifying step is a decrement, the value
/// becomes ≤ 0 and stays ≤ 0 (multiplying a non-positive number by `n` and
/// decrementing both preserve non-positivity); if it is a multiply, the value
/// jumps to `n` and the at most `n−1` decrements can never drag it below 1.
/// Every read happens after the reader's own modification, so all reads agree
/// on the sign. (The paper says "negative"; reads of exactly 0 — e.g. one
/// decrement from 1 — belong with the decrement-first case.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecMulConsensus {
    n: usize,
}

impl DecMulConsensus {
    /// Binary consensus among `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2, "consensus needs at least two processes");
        DecMulConsensus { n }
    }
}

impl Protocol for DecMulConsensus {
    type Proc = DecMulProc;

    fn name(&self) -> String {
        "intro-dec-mul".into()
    }

    fn n(&self) -> usize {
        self.n
    }

    fn domain(&self) -> u64 {
        2
    }

    fn memory_spec(&self) -> MemorySpec {
        MemorySpec::bounded(InstructionSet::ReadDecMul, 1).with_initial(vec![Value::one()])
    }

    fn spawn(&self, _pid: usize, input: u64) -> DecMulProc {
        assert!(input < 2, "binary consensus takes inputs 0 and 1");
        DecMulProc {
            input,
            n: self.n as u64,
            stage: DecMulStage::Modify,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum DecMulStage {
    Modify,
    Read,
    Done(u64),
}

/// Per-process state of the decrement/multiply protocol.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DecMulProc {
    input: u64,
    n: u64,
    stage: DecMulStage,
}

impl Process for DecMulProc {
    fn action(&self) -> Action {
        match &self.stage {
            DecMulStage::Modify if self.input == 0 => {
                Action::Invoke(Op::single(0, Instruction::Decrement))
            }
            DecMulStage::Modify => Action::Invoke(Op::single(0, Instruction::multiply(self.n))),
            DecMulStage::Read => Action::Invoke(Op::read(0)),
            DecMulStage::Done(v) => Action::Decide(*v),
        }
    }

    fn absorb(&mut self, result: Value) {
        match self.stage {
            DecMulStage::Modify => self.stage = DecMulStage::Read,
            DecMulStage::Read => {
                let value = result.as_int().expect("location holds integers");
                self.stage = DecMulStage::Done(u64::from(value.is_positive()));
            }
            DecMulStage::Done(_) => unreachable!("decided processes take no steps"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbh_sim::{run_consensus, RandomScheduler, ScriptedScheduler};

    #[test]
    fn faa_tas_all_mixes_all_seeds() {
        for n in [2, 3, 5, 8] {
            let protocol = FaaTasConsensus::new(n);
            for mask in 0..(1u64 << n) {
                let inputs: Vec<u64> = (0..n).map(|i| (mask >> i) & 1).collect();
                for seed in 0..4 {
                    let report =
                        run_consensus(&protocol, &inputs, RandomScheduler::seeded(seed), 1000)
                            .unwrap();
                    report.check(&inputs).unwrap();
                    assert!(report.unanimous().is_some(), "wait-free: all decide");
                }
            }
        }
    }

    #[test]
    fn faa_tas_tas_first_forces_one() {
        // p0 has input 1 and moves first: its test-and-set() returns 0 → 1 wins.
        let protocol = FaaTasConsensus::new(3);
        let inputs = [1, 0, 0];
        let report = run_consensus(
            &protocol,
            &inputs,
            ScriptedScheduler::new([0, 1, 2]),
            100,
        )
        .unwrap();
        assert_eq!(report.unanimous(), Some(1));
    }

    #[test]
    fn faa_tas_faa_first_forces_zero() {
        let protocol = FaaTasConsensus::new(3);
        let inputs = [1, 0, 0];
        let report = run_consensus(
            &protocol,
            &inputs,
            ScriptedScheduler::new([1, 0, 2]),
            100,
        )
        .unwrap();
        assert_eq!(report.unanimous(), Some(0), "even value, TAS lost the race");
    }

    #[test]
    fn dec_mul_all_mixes_all_seeds() {
        for n in [2, 3, 5] {
            let protocol = DecMulConsensus::new(n);
            for mask in 0..(1u64 << n) {
                let inputs: Vec<u64> = (0..n).map(|i| (mask >> i) & 1).collect();
                for seed in 0..4 {
                    let report =
                        run_consensus(&protocol, &inputs, RandomScheduler::seeded(seed), 1000)
                            .unwrap();
                    report.check(&inputs).unwrap();
                    assert!(report.unanimous().is_some());
                }
            }
        }
    }

    #[test]
    fn dec_mul_zero_value_counts_as_zero_decision() {
        // One decrement from the initial 1 leaves 0: the decrement-first case.
        let protocol = DecMulConsensus::new(2);
        let inputs = [0, 1];
        let report = run_consensus(
            &protocol,
            &inputs,
            ScriptedScheduler::new([0, 0, 1, 1]),
            100,
        )
        .unwrap();
        assert_eq!(report.unanimous(), Some(0));
    }

    #[test]
    fn dec_mul_multiply_first_forces_one() {
        let protocol = DecMulConsensus::new(4);
        let inputs = [0, 1, 0, 0];
        // p1 multiplies first; the three decrements cannot reach 0 from 4.
        let report = run_consensus(
            &protocol,
            &inputs,
            ScriptedScheduler::new([1, 0, 2, 3, 0, 1, 2, 3]),
            100,
        )
        .unwrap();
        assert_eq!(report.unanimous(), Some(1));
    }

    #[test]
    fn both_use_a_single_location() {
        let report = run_consensus(
            &FaaTasConsensus::new(4),
            &[0, 1, 1, 0],
            RandomScheduler::seeded(5),
            100,
        )
        .unwrap();
        assert_eq!(report.locations_touched, 1);
        let report = run_consensus(
            &DecMulConsensus::new(4),
            &[0, 1, 1, 0],
            RandomScheduler::seeded(5),
            100,
        )
        .unwrap();
        assert_eq!(report.locations_touched, 1);
    }
}
