//! Wait-free `n`-consensus from one `compare-and-swap` location.
//!
//! The classic construction behind Table 1's `{compare-and-swap(x,y)}` row:
//! the location starts at `⊥`; every process tries to install its input with
//! `compare-and-swap(⊥, input)` and decides whatever the location then holds
//! (the returned old value if the CAS lost, its own input if it won). This is
//! wait-free — one step per process — which in particular is obstruction-free.

use cbh_model::{Action, Instruction, InstructionSet, MemorySpec, Op, Process, Protocol, Value};

/// One-location compare-and-swap consensus.
///
/// # Examples
///
/// ```
/// use cbh_core::cas::CasConsensus;
/// use cbh_sim::{run_consensus, RandomScheduler};
///
/// let protocol = CasConsensus::new(5);
/// let inputs = [4, 1, 1, 0, 2];
/// let report = run_consensus(&protocol, &inputs, RandomScheduler::seeded(3), 100).unwrap();
/// report.check(&inputs).unwrap();
/// assert_eq!(report.steps, 5, "wait-free: exactly one step each");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CasConsensus {
    n: usize,
}

impl CasConsensus {
    /// CAS consensus among `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2, "consensus needs at least two processes");
        CasConsensus { n }
    }
}

impl Protocol for CasConsensus {
    type Proc = CasProc;

    fn name(&self) -> String {
        "cas-one-location".into()
    }

    fn n(&self) -> usize {
        self.n
    }

    fn domain(&self) -> u64 {
        self.n as u64
    }

    fn memory_spec(&self) -> MemorySpec {
        MemorySpec::bounded(InstructionSet::Cas, 1).with_initial(vec![Value::Bot])
    }

    fn spawn(&self, _pid: usize, input: u64) -> CasProc {
        assert!(input < self.n as u64, "input out of domain");
        CasProc {
            input,
            decided: None,
        }
    }
}

/// Per-process state of CAS consensus.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CasProc {
    input: u64,
    decided: Option<u64>,
}

impl Process for CasProc {
    fn action(&self) -> Action {
        match self.decided {
            Some(v) => Action::Decide(v),
            None => Action::Invoke(Op::single(
                0,
                Instruction::CompareAndSwap {
                    expected: Value::Bot,
                    new: Value::int(self.input),
                },
            )),
        }
    }

    fn absorb(&mut self, result: Value) {
        self.decided = Some(match result {
            Value::Bot => self.input, // our CAS installed the input
            other => other.as_u64().expect("locations hold installed inputs"),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbh_sim::{run_consensus, RandomScheduler, ScriptedScheduler};

    #[test]
    fn first_mover_wins() {
        let protocol = CasConsensus::new(3);
        let inputs = [2, 0, 1];
        let report = run_consensus(
            &protocol,
            &inputs,
            ScriptedScheduler::new([1, 0, 2]),
            100,
        )
        .unwrap();
        assert_eq!(report.unanimous(), Some(0), "p1 moved first, its input wins");
    }

    #[test]
    fn agreement_and_validity_under_random_schedules() {
        let protocol = CasConsensus::new(6);
        let inputs = [5, 5, 0, 3, 3, 1];
        for seed in 0..50 {
            let report =
                run_consensus(&protocol, &inputs, RandomScheduler::seeded(seed), 100).unwrap();
            report.check(&inputs).unwrap();
            assert!(report.unanimous().is_some());
            assert_eq!(report.locations_touched, 1);
        }
    }

    #[test]
    fn uses_exactly_one_step_per_process() {
        let protocol = CasConsensus::new(4);
        let report = run_consensus(
            &protocol,
            &[0, 1, 2, 3],
            RandomScheduler::seeded(9),
            100,
        )
        .unwrap();
        assert_eq!(report.steps, 4);
    }
}
