//! Shared protocol building blocks.

use cbh_model::{Action, Instruction, Op, Process, Value};

/// Which read instruction a [`DoubleCollect`] issues.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReadKind {
    /// `read()` — plain words.
    Read,
    /// `read-max()` — max-registers.
    ReadMax,
    /// `ℓ-buffer-read()` — buffers.
    BufferRead,
}

impl ReadKind {
    fn instruction(self) -> Instruction {
        match self {
            ReadKind::Read => Instruction::Read,
            ReadKind::ReadMax => Instruction::ReadMax,
            ReadKind::BufferRead => Instruction::BufferRead,
        }
    }
}

/// The double-collect scan of Afek et al. [AAD+93], as a sub-state-machine.
///
/// A process repeatedly *collects* (reads every location once, in order) until
/// two consecutive collects return identical values; the repeated collect is
/// then a linearizable snapshot provided the locations' contents never repeat
/// (monotone counters, max-registers, tagged swap values, growing histories —
/// every use in the paper satisfies this).
///
/// Drive it with [`DoubleCollect::poised`] / [`DoubleCollect::absorb`]: each
/// `absorb` consumes the result of the poised read, and returns the snapshot
/// once one is obtained.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DoubleCollect {
    locs: Vec<usize>,
    kind: ReadKind,
    prev: Option<Vec<Value>>,
    cur: Vec<Value>,
}

impl DoubleCollect {
    /// A new scan over `locs` (read in order) using `kind` reads.
    ///
    /// # Panics
    ///
    /// Panics if `locs` is empty.
    pub fn new(locs: Vec<usize>, kind: ReadKind) -> Self {
        assert!(!locs.is_empty(), "cannot scan zero locations");
        DoubleCollect {
            locs,
            kind,
            prev: None,
            cur: Vec::new(),
        }
    }

    /// The read this scan is poised to perform.
    pub fn poised(&self) -> Op {
        Op::single(self.locs[self.cur.len()], self.kind.instruction())
    }

    /// Consumes the result of the poised read; returns the snapshot when two
    /// consecutive collects agree.
    pub fn absorb(&mut self, result: Value) -> Option<Vec<Value>> {
        self.cur.push(result);
        if self.cur.len() < self.locs.len() {
            return None;
        }
        let finished = std::mem::take(&mut self.cur);
        match &self.prev {
            Some(prev) if *prev == finished => Some(finished),
            _ => {
                self.prev = Some(finished);
                None
            }
        }
    }
}

/// How a protocol writes a 1 into a binary location: `write(1)` or
/// `test-and-set()` (whose return value is simply ignored — the observation
/// behind Theorem 9.3's "test-and-set can simulate write(1)").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BitWrite {
    /// `write(1)`.
    Write1,
    /// `test-and-set()`, return value ignored.
    TestAndSet,
}

impl BitWrite {
    /// The instruction that sets the location to 1.
    pub fn instruction(self) -> Instruction {
        match self {
            BitWrite::Write1 => Instruction::write(1),
            BitWrite::TestAndSet => Instruction::TestAndSet,
        }
    }
}

/// Shifts every location an op touches by `base` — used to embed a
/// sub-protocol into a block of a larger protocol's memory (Lemma 5.2).
pub fn offset_op(op: Op, base: usize) -> Op {
    match op {
        Op::Single { loc, instr } => Op::Single {
            loc: loc + base,
            instr,
        },
        Op::MultiAssign(ws) => {
            Op::MultiAssign(ws.into_iter().map(|(loc, v)| (loc + base, v)).collect())
        }
    }
}

/// A process wrapper that relocates the wrapped process's memory accesses by a
/// fixed base offset.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct OffsetProc<P> {
    inner: P,
    base: usize,
}

impl<P: Process> OffsetProc<P> {
    /// Wraps `inner`, shifting all its locations by `base`.
    pub fn new(inner: P, base: usize) -> Self {
        OffsetProc { inner, base }
    }

    /// The wrapped process.
    pub fn inner(&self) -> &P {
        &self.inner
    }
}

impl<P: Process> Process for OffsetProc<P> {
    fn action(&self) -> Action {
        match self.inner.action() {
            Action::Invoke(op) => Action::Invoke(offset_op(op, self.base)),
            decide => decide,
        }
    }

    fn absorb(&mut self, result: Value) {
        self.inner.absorb(result);
    }
}

/// Ceiling division `⌈a / b⌉` for the `⌈n/ℓ⌉`-style bounds of Table 1.
///
/// # Panics
///
/// Panics if `b == 0`.
pub fn div_ceil(a: usize, b: usize) -> usize {
    assert!(b != 0, "division by zero");
    a.div_ceil(b)
}

/// `⌈log₂ m⌉` — the number of bit-agreement rounds in Lemma 5.2; 1 for `m ≤ 2`.
pub fn ceil_log2(m: u64) -> u32 {
    if m <= 2 {
        1
    } else {
        64 - (m - 1).leading_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbh_model::Value;

    #[test]
    fn double_collect_stabilises_after_two_equal_collects() {
        let mut dc = DoubleCollect::new(vec![0, 1], ReadKind::Read);
        assert_eq!(dc.poised(), Op::read(0));
        assert_eq!(dc.absorb(Value::int(1)), None);
        assert_eq!(dc.poised(), Op::read(1));
        assert_eq!(dc.absorb(Value::int(2)), None, "first collect done");
        // Second collect differs (location 0 moved): keeps going.
        assert_eq!(dc.absorb(Value::int(9)), None);
        assert_eq!(dc.absorb(Value::int(2)), None);
        // Third collect equals the second: snapshot.
        assert_eq!(dc.absorb(Value::int(9)), None);
        let snap = dc.absorb(Value::int(2)).expect("stable");
        assert_eq!(snap, vec![Value::int(9), Value::int(2)]);
    }

    #[test]
    fn double_collect_single_location() {
        let mut dc = DoubleCollect::new(vec![4], ReadKind::ReadMax);
        assert_eq!(dc.poised(), Op::single(4, Instruction::ReadMax));
        assert_eq!(dc.absorb(Value::int(3)), None);
        assert_eq!(dc.absorb(Value::int(3)), Some(vec![Value::int(3)]));
    }

    #[test]
    fn offset_op_relocates_all_targets() {
        assert_eq!(offset_op(Op::read(2), 10), Op::read(12));
        let ma = Op::multi_assign([(0, Value::int(1)), (3, Value::int(2))]);
        assert_eq!(
            offset_op(ma, 5),
            Op::multi_assign([(5, Value::int(1)), (8, Value::int(2))])
        );
    }

    #[test]
    fn bit_write_instructions() {
        assert_eq!(BitWrite::Write1.instruction(), Instruction::write(1));
        assert_eq!(BitWrite::TestAndSet.instruction(), Instruction::TestAndSet);
    }

    #[test]
    fn ceil_helpers() {
        assert_eq!(div_ceil(10, 3), 4);
        assert_eq!(div_ceil(9, 3), 3);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(1), 1);
        assert_eq!(ceil_log2(16), 4);
        assert_eq!(ceil_log2(17), 5);
    }

    #[test]
    #[should_panic(expected = "zero locations")]
    fn empty_scan_rejected() {
        let _ = DoubleCollect::new(vec![], ReadKind::Read);
    }
}
