//! `n`-consensus from `n` read/write registers (Table 1 row `{read, write(x)}`).
//!
//! The paper cites \[AH90, BRS15, Zhu15\] for `n`-register algorithms and
//! \[EGZ18\] for the matching lower bound of `n`. This module implements the
//! single-writer flavour: register `i` is owned by process `i` and holds the
//! vector of increments process `i` has performed on each of the `m`
//! racing-counter components (tagged with a sequence number so the
//! double-collect scan is sound). The component counts are the per-register
//! sums, and the racing-counters algorithm (Lemma 3.1) does the rest.

use crate::counter::{CounterEvent, CounterFamily, CounterRequest, CounterSim};
use crate::racing::RacingConsensus;
use crate::util::{DoubleCollect, ReadKind};
use cbh_bigint::BigInt;
use cbh_model::{Instruction, InstructionSet, MemorySpec, Op, Value};

/// An `m`-component counter over `n` single-writer registers.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RegisterCounterFamily {
    m: usize,
    n: usize,
}

impl RegisterCounterFamily {
    /// An `m`-component counter shared by `n` processes, one register each.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0` or `n == 0`.
    pub fn new(m: usize, n: usize) -> Self {
        assert!(m > 0 && n > 0, "need components and processes");
        RegisterCounterFamily { m, n }
    }
}

impl CounterFamily for RegisterCounterFamily {
    type Sim = RegisterCounterSim;

    fn m(&self) -> usize {
        self.m
    }

    fn name(&self) -> String {
        "n-single-writer-registers".into()
    }

    fn memory_spec(&self) -> MemorySpec {
        MemorySpec::bounded(InstructionSet::ReadWrite, self.n)
    }

    fn spawn(&self, pid: usize) -> RegisterCounterSim {
        assert!(pid < self.n, "pid out of range");
        RegisterCounterSim {
            pid,
            n: self.n,
            my_counts: vec![0; self.m],
            seq: 0,
            pending: None,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum RegPending {
    Write,
    Scan(DoubleCollect),
}

/// Per-process state of the single-writer-register counter.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RegisterCounterSim {
    pid: usize,
    n: usize,
    /// This process's contribution to each component.
    my_counts: Vec<u64>,
    seq: u64,
    pending: Option<RegPending>,
}

impl RegisterCounterSim {
    /// Register contents: `(seq, counts…)` — the tag makes values unique so
    /// double collect linearizes.
    fn encode(&self) -> Value {
        let mut items = Vec::with_capacity(self.my_counts.len() + 1);
        items.push(Value::int(self.seq));
        items.extend(self.my_counts.iter().map(|&c| Value::int(c)));
        Value::Seq(items)
    }

    fn decode_counts(m: usize, reg: &Value) -> Vec<u64> {
        match reg {
            // Unwritten registers hold the initial integer 0: no increments.
            Value::Int(_) | Value::Bot => vec![0; m],
            Value::Seq(items) => items[1..]
                .iter()
                .map(|v| v.as_u64().expect("counts are small naturals"))
                .collect(),
        }
    }
}

impl CounterSim for RegisterCounterSim {
    fn m(&self) -> usize {
        self.my_counts.len()
    }

    fn supports_decrement(&self) -> bool {
        false
    }

    fn start(&mut self, req: CounterRequest) {
        assert!(self.pending.is_none(), "counter operation already in flight");
        match req {
            CounterRequest::Increment(v) => {
                self.my_counts[v] += 1;
                self.seq += 1;
                self.pending = Some(RegPending::Write);
            }
            CounterRequest::Scan => {
                self.pending = Some(RegPending::Scan(DoubleCollect::new(
                    (0..self.n).collect(),
                    ReadKind::Read,
                )));
            }
            CounterRequest::Decrement(_) => {
                panic!("single-writer-register counter has no decrement")
            }
        }
    }

    fn poised(&self) -> Op {
        match self.pending.as_ref().expect("no counter operation in flight") {
            RegPending::Write => Op::single(self.pid, Instruction::Write(self.encode())),
            RegPending::Scan(dc) => dc.poised(),
        }
    }

    fn absorb(&mut self, result: Value) -> Option<CounterEvent> {
        match self.pending.as_mut().expect("no counter operation in flight") {
            RegPending::Write => {
                self.pending = None;
                Some(CounterEvent::Done)
            }
            RegPending::Scan(dc) => {
                let snap = dc.absorb(result)?;
                self.pending = None;
                let m = self.m();
                let mut totals = vec![BigInt::zero(); m];
                for reg in &snap {
                    for (v, c) in Self::decode_counts(m, reg).into_iter().enumerate() {
                        totals[v] += &BigInt::from(c);
                    }
                }
                Some(CounterEvent::Counts(totals))
            }
        }
    }
}

/// `n`-consensus from `n` read/write registers: racing counters over
/// [`RegisterCounterFamily`].
///
/// # Examples
///
/// ```
/// use cbh_core::registers::register_consensus;
/// use cbh_sim::{run_consensus, RandomScheduler};
///
/// let protocol = register_consensus(4);
/// let inputs = [0, 2, 2, 1];
/// let report = run_consensus(&protocol, &inputs, RandomScheduler::seeded(5), 1_000_000)
///     .unwrap();
/// report.check(&inputs).unwrap();
/// assert_eq!(report.locations_touched, 4, "n registers");
/// ```
pub fn register_consensus(n: usize) -> RacingConsensus<RegisterCounterFamily> {
    RacingConsensus::new(RegisterCounterFamily::new(n, n), n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbh_sim::{run_consensus, ObstructionScheduler, RandomScheduler, RoundRobinScheduler};

    #[test]
    fn counter_totals_sum_over_owners() {
        use cbh_model::Memory;
        let family = RegisterCounterFamily::new(2, 3);
        let mut mem = Memory::new(&family.memory_spec());
        let mut sims: Vec<_> = (0..3).map(|p| family.spawn(p)).collect();
        let drive = |sim: &mut RegisterCounterSim, mem: &mut Memory, req| {
            sim.start(req);
            loop {
                let r = mem.apply(&sim.poised()).unwrap();
                if let Some(ev) = sim.absorb(r) {
                    return ev;
                }
            }
        };
        drive(&mut sims[0], &mut mem, CounterRequest::Increment(0));
        drive(&mut sims[1], &mut mem, CounterRequest::Increment(0));
        drive(&mut sims[2], &mut mem, CounterRequest::Increment(1));
        let ev = drive(&mut sims[0], &mut mem, CounterRequest::Scan);
        match ev {
            CounterEvent::Counts(c) => {
                assert_eq!(c[0].to_u64(), Some(2));
                assert_eq!(c[1].to_u64(), Some(1));
            }
            CounterEvent::Done => panic!("expected counts"),
        }
    }

    #[test]
    fn consensus_under_many_schedulers() {
        let protocol = register_consensus(4);
        let inputs = [3, 1, 1, 0];
        for seed in 0..10 {
            let report =
                run_consensus(&protocol, &inputs, RandomScheduler::seeded(seed), 2_000_000)
                    .unwrap();
            report.check(&inputs).unwrap();
            assert_eq!(report.locations_touched, 4);
        }
        run_consensus(&protocol, &inputs, RoundRobinScheduler::new(), 2_000_000)
            .unwrap()
            .check(&inputs)
            .unwrap();
        run_consensus(&protocol, &inputs, ObstructionScheduler::seeded(1, 20), 2_000_000)
            .unwrap()
            .check(&inputs)
            .unwrap();
    }

    #[test]
    fn unanimity_is_preserved() {
        let protocol = register_consensus(3);
        let report =
            run_consensus(&protocol, &[1, 1, 1], RandomScheduler::seeded(3), 2_000_000).unwrap();
        assert_eq!(report.unanimous(), Some(1));
    }
}
