//! `m`-component counter objects simulated inside memory locations.
//!
//! Theorem 3.3: a *single* location supporting `read()` plus one of
//! `multiply(x)`, `add(x)`, `set-bit(x)` can simulate an `m`-component counter
//! object, which by the racing-counters algorithm (Lemmas 3.1/3.2, module
//! [`crate::racing`]) suffices for `n`-consensus. The same encodings work when
//! the only instruction is `fetch-and-add(x)` or `fetch-and-multiply(x)`,
//! because `fetch-and-add(0)` / `fetch-and-multiply(1)` are reads.
//!
//! Each simulation is a [`CounterSim`]: a sub-state-machine that translates
//! counter operations (`increment`, `decrement`, `scan`) into sequences of
//! atomic memory steps. A [`CounterFamily`] describes the memory the
//! simulation runs on and spawns per-process sims.

use crate::primes::first_primes;
use cbh_bigint::BigInt;
use cbh_model::{Instruction, InstructionSet, MemorySpec, Op, Value};
use std::fmt::Debug;
use std::hash::Hash;

/// A counter operation a process may start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CounterRequest {
    /// `increment()` on component `v`.
    Increment(usize),
    /// `decrement()` on component `v` (bounded counters only, Lemma 3.2).
    Decrement(usize),
    /// `scan()` of all components.
    Scan,
}

/// Completion of a counter operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CounterEvent {
    /// An increment or decrement finished.
    Done,
    /// A scan finished with these component counts.
    Counts(Vec<BigInt>),
}

/// A per-process simulation of an `m`-component counter over shared memory.
///
/// Protocol code drives it in the poised/absorb style of
/// [`cbh_model::Process`]: call [`CounterSim::start`], then repeatedly execute
/// [`CounterSim::poised`] and feed the result to [`CounterSim::absorb`] until
/// it reports a [`CounterEvent`].
pub trait CounterSim: Clone + Debug + Eq + Hash {
    /// Number of components `m`.
    fn m(&self) -> usize;

    /// Whether [`CounterRequest::Decrement`] is available (bounded counters).
    fn supports_decrement(&self) -> bool;

    /// Begins a counter operation.
    ///
    /// # Panics
    ///
    /// Panics if an operation is already in flight, or on
    /// [`CounterRequest::Decrement`] when unsupported.
    fn start(&mut self, req: CounterRequest);

    /// The memory step the in-flight operation is poised to perform.
    ///
    /// # Panics
    ///
    /// Panics if no operation is in flight.
    fn poised(&self) -> Op;

    /// Absorbs the result of the poised step; `Some` when the operation
    /// completes.
    fn absorb(&mut self, result: Value) -> Option<CounterEvent>;
}

/// A family of counter simulations: memory recipe plus per-process spawner.
pub trait CounterFamily: Clone {
    /// The per-process simulation type.
    type Sim: CounterSim;

    /// Number of components.
    fn m(&self) -> usize;

    /// Human-readable name for reports.
    fn name(&self) -> String;

    /// The memory the family needs.
    fn memory_spec(&self) -> MemorySpec;

    /// Spawns the simulation state for process `pid`.
    fn spawn(&self, pid: usize) -> Self::Sim;
}

// ---------------------------------------------------------------------------
// multiply(x): product of primes (Theorem 3.3, first construction)
// ---------------------------------------------------------------------------

/// Whether the multiply counter uses `{read, multiply}` or the read-free
/// `{fetch-and-multiply}` set (both are Table 1 `SP = 1` rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MultiplyFlavor {
    /// `{read(), multiply(x)}`.
    ReadMultiply,
    /// `{fetch-and-multiply(x)}` — reads are `fetch-and-multiply(1)`.
    FetchAndMultiply,
}

/// The prime-product counter: one location initialised to 1; incrementing
/// component `cᵥ` multiplies by the `(v+1)`-st prime `p_v`; a read recovers
/// every count as the exponent of `p_v` in the factorisation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MultiplyCounterFamily {
    m: usize,
    flavor: MultiplyFlavor,
}

impl MultiplyCounterFamily {
    /// An `m`-component prime-product counter.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`.
    pub fn new(m: usize, flavor: MultiplyFlavor) -> Self {
        assert!(m > 0, "need at least one component");
        MultiplyCounterFamily { m, flavor }
    }
}

impl CounterFamily for MultiplyCounterFamily {
    type Sim = MultiplyCounterSim;

    fn m(&self) -> usize {
        self.m
    }

    fn name(&self) -> String {
        match self.flavor {
            MultiplyFlavor::ReadMultiply => "multiply-prime-counter".into(),
            MultiplyFlavor::FetchAndMultiply => "fetch-and-multiply-prime-counter".into(),
        }
    }

    fn memory_spec(&self) -> MemorySpec {
        let iset = match self.flavor {
            MultiplyFlavor::ReadMultiply => InstructionSet::ReadMultiply,
            MultiplyFlavor::FetchAndMultiply => InstructionSet::FetchAndMultiply,
        };
        MemorySpec::bounded(iset, 1).with_initial(vec![Value::one()])
    }

    fn spawn(&self, _pid: usize) -> MultiplyCounterSim {
        MultiplyCounterSim {
            primes: first_primes(self.m),
            flavor: self.flavor,
            pending: None,
        }
    }
}

/// Per-process state of the prime-product counter simulation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MultiplyCounterSim {
    primes: Vec<u64>,
    flavor: MultiplyFlavor,
    pending: Option<CounterRequest>,
}

impl CounterSim for MultiplyCounterSim {
    fn m(&self) -> usize {
        self.primes.len()
    }

    fn supports_decrement(&self) -> bool {
        false
    }

    fn start(&mut self, req: CounterRequest) {
        assert!(self.pending.is_none(), "counter operation already in flight");
        assert!(
            !matches!(req, CounterRequest::Decrement(_)),
            "prime-product counter has no decrement"
        );
        self.pending = Some(req);
    }

    fn poised(&self) -> Op {
        let instr = match self.pending.expect("no counter operation in flight") {
            CounterRequest::Increment(v) => match self.flavor {
                MultiplyFlavor::ReadMultiply => Instruction::multiply(self.primes[v]),
                MultiplyFlavor::FetchAndMultiply => {
                    Instruction::FetchAndMultiply(self.primes[v].into())
                }
            },
            CounterRequest::Scan => match self.flavor {
                MultiplyFlavor::ReadMultiply => Instruction::Read,
                MultiplyFlavor::FetchAndMultiply => Instruction::FetchAndMultiply(1u64.into()),
            },
            CounterRequest::Decrement(_) => unreachable!("rejected by start"),
        };
        Op::single(0, instr)
    }

    fn absorb(&mut self, result: Value) -> Option<CounterEvent> {
        match self.pending.take().expect("no counter operation in flight") {
            CounterRequest::Increment(_) => Some(CounterEvent::Done),
            CounterRequest::Scan => {
                let word = result.as_int().expect("counter word is an integer");
                let counts = self
                    .primes
                    .iter()
                    .map(|&p| BigInt::from(word.factor_multiplicity(p)))
                    .collect();
                Some(CounterEvent::Counts(counts))
            }
            CounterRequest::Decrement(_) => unreachable!("rejected by start"),
        }
    }
}

// ---------------------------------------------------------------------------
// add(x): base-3n digits, bounded (Theorem 3.3, second construction)
// ---------------------------------------------------------------------------

/// Whether the add counter uses `{read, add}` or `{fetch-and-add}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AddFlavor {
    /// `{read(), add(x)}`.
    ReadAdd,
    /// `{fetch-and-add(x)}` — reads are `fetch-and-add(0)`.
    FetchAndAdd,
}

/// The positional counter: the word is a number in base `3n`; digit `v` is the
/// count of component `cᵥ`. Increment adds `(3n)ᵛ`, decrement subtracts it.
///
/// This is the *bounded* counter of Lemma 3.2: digits must stay in
/// `0..=3n−1`, which the bounded racing-counters algorithm guarantees.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AddCounterFamily {
    m: usize,
    n: usize,
    flavor: AddFlavor,
}

impl AddCounterFamily {
    /// An `m`-component base-`3n` counter for `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0` or `n == 0`.
    pub fn new(m: usize, n: usize, flavor: AddFlavor) -> Self {
        assert!(m > 0 && n > 0, "need components and processes");
        AddCounterFamily { m, n, flavor }
    }

    /// The digit base `3n`.
    pub fn base(&self) -> u64 {
        3 * self.n as u64
    }
}

impl CounterFamily for AddCounterFamily {
    type Sim = AddCounterSim;

    fn m(&self) -> usize {
        self.m
    }

    fn name(&self) -> String {
        match self.flavor {
            AddFlavor::ReadAdd => "add-base3n-counter".into(),
            AddFlavor::FetchAndAdd => "fetch-and-add-base3n-counter".into(),
        }
    }

    fn memory_spec(&self) -> MemorySpec {
        let iset = match self.flavor {
            AddFlavor::ReadAdd => InstructionSet::ReadAdd,
            AddFlavor::FetchAndAdd => InstructionSet::FetchAndAdd,
        };
        MemorySpec::bounded(iset, 1)
    }

    fn spawn(&self, _pid: usize) -> AddCounterSim {
        AddCounterSim {
            m: self.m,
            base: self.base(),
            flavor: self.flavor,
            pending: None,
        }
    }
}

/// Per-process state of the base-`3n` counter simulation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AddCounterSim {
    m: usize,
    base: u64,
    flavor: AddFlavor,
    pending: Option<CounterRequest>,
}

impl AddCounterSim {
    fn place(&self, v: usize) -> BigInt {
        BigInt::from(self.base).pow(v as u64)
    }

    fn decode(&self, word: &BigInt) -> Vec<BigInt> {
        let mut digits = Vec::with_capacity(self.m);
        let mut cur = word.clone();
        for _ in 0..self.m {
            let (q, r) = cur.div_rem_euclid_u64(self.base);
            digits.push(BigInt::from(r));
            cur = q;
        }
        digits
    }
}

impl CounterSim for AddCounterSim {
    fn m(&self) -> usize {
        self.m
    }

    fn supports_decrement(&self) -> bool {
        true
    }

    fn start(&mut self, req: CounterRequest) {
        assert!(self.pending.is_none(), "counter operation already in flight");
        self.pending = Some(req);
    }

    fn poised(&self) -> Op {
        let delta = match self.pending.expect("no counter operation in flight") {
            CounterRequest::Increment(v) => self.place(v),
            CounterRequest::Decrement(v) => -self.place(v),
            CounterRequest::Scan => {
                let instr = match self.flavor {
                    AddFlavor::ReadAdd => Instruction::Read,
                    AddFlavor::FetchAndAdd => Instruction::fetch_and_add(0),
                };
                return Op::single(0, instr);
            }
        };
        let instr = match self.flavor {
            AddFlavor::ReadAdd => Instruction::Add(delta),
            AddFlavor::FetchAndAdd => Instruction::FetchAndAdd(delta),
        };
        Op::single(0, instr)
    }

    fn absorb(&mut self, result: Value) -> Option<CounterEvent> {
        match self.pending.take().expect("no counter operation in flight") {
            CounterRequest::Increment(_) | CounterRequest::Decrement(_) => {
                Some(CounterEvent::Done)
            }
            CounterRequest::Scan => {
                let word = result.as_int().expect("counter word is an integer");
                Some(CounterEvent::Counts(self.decode(word)))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// set-bit(x): per-process unary blocks (Theorem 3.3, third construction)
// ---------------------------------------------------------------------------

/// The set-bit counter: the word is partitioned into blocks of `m·n` bits.
/// The `b`-th increment of component `cᵥ` by process `i` sets bit
/// `v·n + i` of block `b` (block `b+1` in the paper's 1-indexed prose). The
/// count of `cᵥ` is the number of set bits in the `v`-th stripe, i.e. the sum
/// over processes of how many times each has incremented `cᵥ`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SetBitCounterFamily {
    m: usize,
    n: usize,
}

impl SetBitCounterFamily {
    /// An `m`-component set-bit counter for `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0` or `n == 0`.
    pub fn new(m: usize, n: usize) -> Self {
        assert!(m > 0 && n > 0, "need components and processes");
        SetBitCounterFamily { m, n }
    }
}

impl CounterFamily for SetBitCounterFamily {
    type Sim = SetBitCounterSim;

    fn m(&self) -> usize {
        self.m
    }

    fn name(&self) -> String {
        "set-bit-block-counter".into()
    }

    fn memory_spec(&self) -> MemorySpec {
        MemorySpec::bounded(InstructionSet::ReadSetBit, 1)
    }

    fn spawn(&self, pid: usize) -> SetBitCounterSim {
        assert!(pid < self.n, "pid out of range");
        SetBitCounterSim {
            m: self.m,
            n: self.n,
            pid,
            my_incs: vec![0; self.m],
            pending: None,
        }
    }
}

/// Per-process state of the set-bit counter simulation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SetBitCounterSim {
    m: usize,
    n: usize,
    pid: usize,
    /// How many times *this process* has incremented each component — the
    /// paper's locally-stored block index.
    my_incs: Vec<u64>,
    pending: Option<CounterRequest>,
}

impl CounterSim for SetBitCounterSim {
    fn m(&self) -> usize {
        self.m
    }

    fn supports_decrement(&self) -> bool {
        false
    }

    fn start(&mut self, req: CounterRequest) {
        assert!(self.pending.is_none(), "counter operation already in flight");
        assert!(
            !matches!(req, CounterRequest::Decrement(_)),
            "set-bit counter has no decrement"
        );
        self.pending = Some(req);
    }

    fn poised(&self) -> Op {
        let instr = match self.pending.expect("no counter operation in flight") {
            CounterRequest::Increment(v) => {
                let block = self.my_incs[v];
                let stride = (self.m * self.n) as u64;
                Instruction::SetBit(block * stride + (v * self.n + self.pid) as u64)
            }
            CounterRequest::Scan => Instruction::Read,
            CounterRequest::Decrement(_) => unreachable!("rejected by start"),
        };
        Op::single(0, instr)
    }

    fn absorb(&mut self, result: Value) -> Option<CounterEvent> {
        match self.pending.take().expect("no counter operation in flight") {
            CounterRequest::Increment(v) => {
                self.my_incs[v] += 1;
                Some(CounterEvent::Done)
            }
            CounterRequest::Scan => {
                let word = result.as_int().expect("counter word is an integer");
                let stride = (self.m * self.n) as u64;
                let mut counts = vec![0u64; self.m];
                let bits = word.bit_len() as u64;
                for pos in 0..bits {
                    if word.bit(pos) {
                        let v = ((pos % stride) / self.n as u64) as usize;
                        counts[v] += 1;
                    }
                }
                Some(CounterEvent::Counts(
                    counts.into_iter().map(BigInt::from).collect(),
                ))
            }
            CounterRequest::Decrement(_) => unreachable!("rejected by start"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbh_model::Memory;

    /// Drives `sim` through one complete counter operation against `mem`.
    fn run_op<S: CounterSim>(sim: &mut S, mem: &mut Memory, req: CounterRequest) -> CounterEvent {
        sim.start(req);
        loop {
            let op = sim.poised();
            let result = mem.apply(&op).expect("memory accepts counter steps");
            if let Some(event) = sim.absorb(result) {
                return event;
            }
        }
    }

    fn counts_of(event: CounterEvent) -> Vec<u64> {
        match event {
            CounterEvent::Counts(c) => c.iter().map(|v| v.to_u64().unwrap()).collect(),
            CounterEvent::Done => panic!("expected counts"),
        }
    }

    fn exercise_family<F: CounterFamily>(family: &F, n: usize, use_dec: bool) {
        let mut mem = Memory::new(&family.memory_spec());
        let mut sims: Vec<F::Sim> = (0..n).map(|pid| family.spawn(pid)).collect();
        // Interleave increments from all processes across components.
        for round in 0..3 {
            for (pid, sim) in sims.iter_mut().enumerate() {
                let v = (pid + round) % family.m();
                run_op(sim, &mut mem, CounterRequest::Increment(v));
            }
        }
        // Each component receives the same number of increments overall when
        // m divides n·rounds; here simply recompute expectations directly.
        let mut expect = vec![0u64; family.m()];
        for round in 0..3 {
            for pid in 0..n {
                expect[(pid + round) % family.m()] += 1;
            }
        }
        let got = counts_of(run_op(&mut sims[0], &mut mem, CounterRequest::Scan));
        assert_eq!(got, expect, "{}", family.name());

        if use_dec {
            run_op(&mut sims[1], &mut mem, CounterRequest::Decrement(0));
            let got = counts_of(run_op(&mut sims[2], &mut mem, CounterRequest::Scan));
            assert_eq!(got[0], expect[0] - 1, "decrement took effect");
        }
    }

    #[test]
    fn multiply_counter_both_flavors() {
        exercise_family(
            &MultiplyCounterFamily::new(3, MultiplyFlavor::ReadMultiply),
            4,
            false,
        );
        exercise_family(
            &MultiplyCounterFamily::new(3, MultiplyFlavor::FetchAndMultiply),
            4,
            false,
        );
    }

    #[test]
    fn add_counter_both_flavors_with_decrement() {
        exercise_family(&AddCounterFamily::new(3, 4, AddFlavor::ReadAdd), 4, true);
        exercise_family(&AddCounterFamily::new(3, 4, AddFlavor::FetchAndAdd), 4, true);
    }

    #[test]
    fn set_bit_counter() {
        exercise_family(&SetBitCounterFamily::new(3, 4), 4, false);
    }

    #[test]
    fn multiply_counts_are_prime_exponents() {
        let family = MultiplyCounterFamily::new(2, MultiplyFlavor::ReadMultiply);
        let mut mem = Memory::new(&family.memory_spec());
        let mut sim = family.spawn(0);
        for _ in 0..5 {
            run_op(&mut sim, &mut mem, CounterRequest::Increment(0));
        }
        for _ in 0..2 {
            run_op(&mut sim, &mut mem, CounterRequest::Increment(1));
        }
        // Word is 2^5 · 3^2 = 288.
        assert_eq!(
            mem.cell(0).unwrap().as_word().unwrap(),
            &Value::int(288)
        );
        let got = counts_of(run_op(&mut sim, &mut mem, CounterRequest::Scan));
        assert_eq!(got, vec![5, 2]);
    }

    #[test]
    fn add_counter_aliasing_avoided_by_positional_encoding() {
        // The paper's caution: with plain add(a)/add(b), b increments of a and
        // a of b alias. Base-3n positions cannot alias while digits < 3n.
        let family = AddCounterFamily::new(2, 2, AddFlavor::ReadAdd);
        let mut mem = Memory::new(&family.memory_spec());
        let mut sim = family.spawn(0);
        for _ in 0..5 {
            run_op(&mut sim, &mut mem, CounterRequest::Increment(0));
        }
        let got = counts_of(run_op(&mut sim, &mut mem, CounterRequest::Scan));
        assert_eq!(got, vec![5, 0], "5 < 3n = 6 stays in digit 0");
    }

    #[test]
    fn set_bit_distinct_processes_never_collide() {
        let family = SetBitCounterFamily::new(2, 3);
        let mut mem = Memory::new(&family.memory_spec());
        let mut a = family.spawn(0);
        let mut b = family.spawn(2);
        // Both increment component 1 twice; 4 distinct bits must be set.
        for _ in 0..2 {
            run_op(&mut a, &mut mem, CounterRequest::Increment(1));
            run_op(&mut b, &mut mem, CounterRequest::Increment(1));
        }
        let word = mem.cell(0).unwrap().as_word().unwrap().clone();
        let ones = match word {
            Value::Int(v) => v.count_ones(),
            _ => panic!(),
        };
        assert_eq!(ones, 4);
        let got = counts_of(run_op(&mut a, &mut mem, CounterRequest::Scan));
        assert_eq!(got, vec![0, 4]);
    }

    #[test]
    #[should_panic(expected = "no decrement")]
    fn multiply_decrement_rejected() {
        let family = MultiplyCounterFamily::new(2, MultiplyFlavor::ReadMultiply);
        let mut sim = family.spawn(0);
        sim.start(CounterRequest::Decrement(0));
    }

    #[test]
    #[should_panic(expected = "already in flight")]
    fn double_start_rejected() {
        let family = AddCounterFamily::new(2, 2, AddFlavor::ReadAdd);
        let mut sim = family.spawn(0);
        sim.start(CounterRequest::Scan);
        sim.start(CounterRequest::Scan);
    }
}
