//! The Table-1 protocol registry: every row family, uniformly constructible.
//!
//! The conformance fuzzer needs to *enumerate* protocols — pick a row, pick a
//! process count, build the protocol, hand it to a visitor generic over the
//! concrete [`Protocol`] type. Rust protocols have distinct process types, so
//! the registry exposes the classic visitor pattern instead of trait objects:
//! [`all_rows`] lists the [`RowSpec`] metadata (anonymity, memory
//! boundedness, exact Table 1 space when known), and [`visit_row`]
//! constructs the protocol for a given `n` and passes it — statically typed —
//! to a [`RowVisitor`].
//!
//! Each entry corresponds to a protocol family exercised by
//! `tests/consensus_matrix.rs`; several Table 1 rows contribute more than one
//! family (counter flavors, increment flavors, buffer shapes).

use crate::bitwise::{increment_log_consensus, tas_reset_consensus, write01_consensus};
use crate::buffer::buffer_consensus;
use crate::cas::CasConsensus;
use crate::counter::{
    AddCounterFamily, AddFlavor, MultiplyCounterFamily, MultiplyFlavor, SetBitCounterFamily,
};
use crate::hetero::hetero_consensus;
use crate::increment::IncrementFlavor;
use crate::intro::{DecMulConsensus, FaaTasConsensus};
use crate::maxreg::MaxRegConsensus;
use crate::racing::RacingConsensus;
use crate::registers::register_consensus;
use crate::swap::SwapConsensus;
use crate::tracks::track_consensus;
use crate::util::BitWrite;
use cbh_model::Protocol;

/// Static description of one registered protocol family.
///
/// (No `PartialEq`: the `space` field is a function pointer, and function
/// pointer comparisons are meaningless across codegen units. Compare `id`s.)
#[derive(Debug, Clone, Copy)]
pub struct RowSpec {
    /// Stable identifier, used in scenario records and fuzzer seeds.
    pub id: &'static str,
    /// Paper provenance of the family's upper bound.
    pub source: &'static str,
    /// `true` if processes never consult their pid — exactly the protocols
    /// for which the checker's process-symmetry reduction is sound.
    pub anonymous: bool,
    /// `true` if the memory grows without bound (no Table 1 space to assert).
    pub unbounded_memory: bool,
    /// Smallest supported process count.
    pub min_n: usize,
    /// Exact worst-case locations touched as a function of `n` (Table 1),
    /// when the bound is exact for this concrete family.
    pub space: Option<fn(usize) -> usize>,
}

/// A computation generic over the concrete protocol type a row constructs.
///
/// The `P::Proc: Send + Sync` bounds let visitors hand the protocol to the
/// work-stealing packed explorer (whose workers share interned process
/// states by reference) and the real-thread runtime.
pub trait RowVisitor {
    /// What the visit produces.
    type Output;

    /// Called with the constructed protocol for the requested row.
    fn visit<P>(&mut self, spec: &RowSpec, protocol: P) -> Self::Output
    where
        P: Protocol,
        P::Proc: Send + Sync;
}

const ROWS: &[RowSpec] = &[
    RowSpec {
        id: "cas",
        source: "CAS folklore (Table 1 bottom row)",
        anonymous: true,
        unbounded_memory: false,
        min_n: 2,
        space: Some(|_| 1),
    },
    RowSpec {
        id: "faa-tas",
        source: "§1 introductory example",
        anonymous: true,
        unbounded_memory: false,
        min_n: 2,
        space: Some(|_| 1),
    },
    RowSpec {
        id: "dec-mul",
        source: "§1 introductory example",
        anonymous: true,
        unbounded_memory: false,
        min_n: 2,
        space: Some(|_| 1),
    },
    RowSpec {
        id: "racing-multiply",
        source: "Theorem 3.3 (read/multiply)",
        anonymous: true,
        unbounded_memory: false,
        min_n: 2,
        space: Some(|_| 1),
    },
    RowSpec {
        id: "racing-fetch-multiply",
        source: "Theorem 3.3 (fetch-and-multiply)",
        anonymous: true,
        unbounded_memory: false,
        min_n: 2,
        space: Some(|_| 1),
    },
    RowSpec {
        id: "racing-add",
        source: "Theorem 3.3 (read/add)",
        anonymous: true,
        unbounded_memory: false,
        min_n: 2,
        space: Some(|_| 1),
    },
    RowSpec {
        id: "racing-faa",
        source: "Theorem 3.3 (fetch-and-add)",
        anonymous: true,
        unbounded_memory: false,
        min_n: 2,
        space: Some(|_| 1),
    },
    RowSpec {
        id: "racing-setbit",
        source: "Theorem 3.3 (read/set-bit)",
        anonymous: false,
        unbounded_memory: false,
        min_n: 2,
        space: Some(|_| 1),
    },
    RowSpec {
        id: "maxreg",
        source: "Theorem 4.2 (two max-registers)",
        anonymous: true,
        unbounded_memory: false,
        min_n: 2,
        space: Some(|_| 2),
    },
    RowSpec {
        id: "increment-log",
        source: "Theorem 5.3 (increment)",
        anonymous: false,
        unbounded_memory: false,
        min_n: 2,
        space: None,
    },
    RowSpec {
        id: "fetch-increment-log",
        source: "Theorem 5.3 (fetch-and-increment)",
        anonymous: false,
        unbounded_memory: false,
        min_n: 2,
        space: None,
    },
    RowSpec {
        id: "buffer-l2",
        source: "Theorem 6.3 (ℓ = 2 buffers)",
        anonymous: false,
        unbounded_memory: false,
        min_n: 2,
        space: Some(|n| n.div_ceil(2)),
    },
    RowSpec {
        id: "buffer-ln",
        source: "Theorem 6.3 (ℓ = n buffers)",
        anonymous: false,
        unbounded_memory: false,
        min_n: 2,
        space: Some(|_| 1),
    },
    RowSpec {
        id: "hetero-buffers",
        source: "Section 7 heterogeneous capacities",
        anonymous: false,
        unbounded_memory: false,
        min_n: 2,
        space: None,
    },
    RowSpec {
        id: "swap",
        source: "Theorem 8.8 (Algorithm 1, anonymous)",
        anonymous: true,
        unbounded_memory: false,
        min_n: 2,
        space: Some(|n| n - 1),
    },
    RowSpec {
        id: "registers",
        source: "[AH90, BRS15, Zhu15] (n registers)",
        anonymous: false,
        unbounded_memory: false,
        min_n: 2,
        space: Some(|n| n),
    },
    RowSpec {
        id: "tracks-write1",
        source: "Theorem 9.3 (unbounded tracks, write(1))",
        anonymous: true,
        unbounded_memory: true,
        min_n: 2,
        space: None,
    },
    RowSpec {
        id: "tracks-tas",
        source: "Theorem 9.3 (unbounded tracks, test-and-set)",
        anonymous: true,
        unbounded_memory: true,
        min_n: 2,
        space: None,
    },
    RowSpec {
        id: "write01",
        source: "Theorem 9.4 (write 0/1)",
        anonymous: false,
        unbounded_memory: false,
        min_n: 2,
        space: None,
    },
    RowSpec {
        id: "tas-reset",
        source: "Theorem 9.4 (test-and-set/reset)",
        anonymous: false,
        unbounded_memory: false,
        min_n: 2,
        space: None,
    },
];

/// Every registered protocol family, in registry order.
pub fn all_rows() -> Vec<RowSpec> {
    ROWS.to_vec()
}

/// The spec registered under `id`, if any.
pub fn row_spec(id: &str) -> Option<RowSpec> {
    ROWS.iter().find(|r| r.id == id).copied()
}

/// Heterogeneous buffer capacities summing to `n`: twos, then a final one.
fn hetero_caps(n: usize) -> Vec<usize> {
    let mut caps = vec![2; n / 2];
    if n % 2 == 1 {
        caps.push(1);
    }
    caps
}

/// Constructs the protocol registered under `id` for `n` processes and
/// passes it to `visitor`; returns `None` for an unknown id.
///
/// # Panics
///
/// Panics if `n` is below the row's `min_n`.
pub fn visit_row<V: RowVisitor>(id: &str, n: usize, visitor: &mut V) -> Option<V::Output> {
    let spec = row_spec(id)?;
    assert!(
        n >= spec.min_n,
        "row {id} needs at least {} processes, got {n}",
        spec.min_n
    );
    Some(match id {
        "cas" => visitor.visit(&spec, CasConsensus::new(n)),
        "faa-tas" => visitor.visit(&spec, FaaTasConsensus::new(n)),
        "dec-mul" => visitor.visit(&spec, DecMulConsensus::new(n)),
        "racing-multiply" => visitor.visit(
            &spec,
            RacingConsensus::new(
                MultiplyCounterFamily::new(n, MultiplyFlavor::ReadMultiply),
                n,
            ),
        ),
        "racing-fetch-multiply" => visitor.visit(
            &spec,
            RacingConsensus::new(
                MultiplyCounterFamily::new(n, MultiplyFlavor::FetchAndMultiply),
                n,
            ),
        ),
        "racing-add" => visitor.visit(
            &spec,
            RacingConsensus::new(AddCounterFamily::new(n, n, AddFlavor::ReadAdd), n),
        ),
        "racing-faa" => visitor.visit(
            &spec,
            RacingConsensus::new(AddCounterFamily::new(n, n, AddFlavor::FetchAndAdd), n),
        ),
        "racing-setbit" => visitor.visit(
            &spec,
            RacingConsensus::new(SetBitCounterFamily::new(n, n), n),
        ),
        "maxreg" => visitor.visit(&spec, MaxRegConsensus::new(n)),
        "increment-log" => visitor.visit(
            &spec,
            increment_log_consensus(n, IncrementFlavor::Increment),
        ),
        "fetch-increment-log" => visitor.visit(
            &spec,
            increment_log_consensus(n, IncrementFlavor::FetchAndIncrement),
        ),
        "buffer-l2" => visitor.visit(&spec, buffer_consensus(n, 2)),
        "buffer-ln" => visitor.visit(&spec, buffer_consensus(n, n)),
        "hetero-buffers" => visitor.visit(&spec, hetero_consensus(n, hetero_caps(n))),
        "swap" => visitor.visit(&spec, SwapConsensus::new(n)),
        "registers" => visitor.visit(&spec, register_consensus(n)),
        "tracks-write1" => visitor.visit(&spec, track_consensus(n, BitWrite::Write1)),
        "tracks-tas" => visitor.visit(&spec, track_consensus(n, BitWrite::TestAndSet)),
        "write01" => visitor.visit(&spec, write01_consensus(n)),
        "tas-reset" => visitor.visit(&spec, tas_reset_consensus(n)),
        _ => unreachable!("row_spec returned Some for unregistered id {id}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbh_sim::{run_consensus, RoundRobinScheduler};

    /// Runs one round-robin consensus instance and returns (name, n, domain,
    /// touched, unanimous).
    struct Smoke;

    impl RowVisitor for Smoke {
        type Output = (String, usize, u64, usize, Option<u64>);

        fn visit<P>(&mut self, _spec: &RowSpec, protocol: P) -> Self::Output
        where
            P: Protocol,
            P::Proc: Send + Sync,
        {
            let n = protocol.n();
            let inputs: Vec<u64> = (0..n as u64).map(|i| i % protocol.domain()).collect();
            let report =
                run_consensus(&protocol, &inputs, RoundRobinScheduler::new(), 1_000_000).unwrap();
            report.check(&inputs).unwrap();
            (
                protocol.name(),
                n,
                protocol.domain(),
                report.locations_touched,
                report.unanimous(),
            )
        }
    }

    #[test]
    fn registry_covers_at_least_ten_distinct_rows() {
        let rows = all_rows();
        assert!(rows.len() >= 10, "only {} rows registered", rows.len());
        let ids: std::collections::BTreeSet<&str> = rows.iter().map(|r| r.id).collect();
        assert_eq!(ids.len(), rows.len(), "row ids must be unique");
    }

    #[test]
    fn every_row_constructs_and_solves_consensus() {
        for row in all_rows() {
            for n in [row.min_n, 3] {
                let (name, got_n, domain, touched, unanimous) =
                    visit_row(row.id, n, &mut Smoke).expect("registered id");
                assert_eq!(got_n, n, "{name}");
                assert!(domain >= 2, "{name}");
                assert!(unanimous.is_some(), "{name} must decide under round-robin");
                if let Some(space) = row.space {
                    assert!(
                        touched <= space(n),
                        "{name}: touched {touched} > Table 1 bound {}",
                        space(n)
                    );
                }
            }
        }
    }

    #[test]
    fn unknown_ids_are_rejected() {
        assert!(row_spec("no-such-row").is_none());
        assert!(visit_row("no-such-row", 2, &mut Smoke).is_none());
    }

    #[test]
    fn hetero_capacities_sum_to_n() {
        for n in 2..10 {
            assert_eq!(hetero_caps(n).iter().sum::<usize>(), n);
        }
    }
}
