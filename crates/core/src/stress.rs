//! Adversarial *stress* protocols for the verification engines.
//!
//! These are not rows of Table 1 and are deliberately **not** registered in
//! [`crate::registry`]: they exist to pressure specific resources of the
//! bounded model checker, not to witness a space bound. The first (and so
//! far only) inhabitant, [`value_diverse_consensus`], manufactures
//! maximal *state diversity* — every reachable process state is distinct
//! and grows with its step count — so the checker's intern tables expand
//! without the dedup relief every real Table-1 row provides. Budget
//! enforcement that survives the registry can still silently overrun here;
//! the tier-1 budget suite uses this row as the regression for exactly
//! that hole.

use cbh_model::{Action, Instruction, InstructionSet, MemorySpec, Op, Process, Protocol, Value};

/// SplitMix64 finalizer: full-entropy mixing so every absorbed counter
/// value lands as an incompressible 64-bit word in the history.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A value-diverse intern-table stressor (see [`value_diverse_consensus`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ValueDiverse {
    n: usize,
    rounds: u32,
}

/// Words appended to a process's history per absorbed counter value. A
/// burst (rather than a single word) keeps the interesting regime — interned
/// bytes large while configuration counts stay small — reachable at shallow
/// test horizons.
const BURST: usize = 16;

/// Intern-table stress protocol: `n` processes share one
/// fetch-and-increment counter, and each process appends a burst of
/// hash-mixed words derived from every counter value it receives to a
/// private, ever-growing history.
///
/// Two properties make it adversarial to the packed engine:
///
/// - **No state collisions.** A process's history is the exact subsequence
///   of counter values it personally received, so distinct interleavings
///   yield distinct process states — nothing ever re-interns.
/// - **No compressible bytes.** Histories hold SplitMix64-mixed words, so
///   each interned state costs its full serialized size.
///
/// Configuration count stays modest (one shared counter bounds the
/// branching) while interned bytes grow with the *sum of history lengths*
/// across all distinct states — exactly the shape that blows through a
/// memory budget that only meters frontier and seen-set bytes.
///
/// Processes decide `0` after `rounds` steps (domain is 1, so inputs are
/// all `0` and the decision is trivially valid and agreeing); pick
/// `rounds` above the explored horizon to keep every process active
/// throughout.
pub fn value_diverse_consensus(n: usize) -> ValueDiverse {
    assert!(n >= 2, "stress row needs at least two processes");
    ValueDiverse { n, rounds: 1 << 20 }
}

impl Protocol for ValueDiverse {
    type Proc = ValueDiverseProc;

    fn name(&self) -> String {
        "value-diverse".into()
    }

    fn n(&self) -> usize {
        self.n
    }

    fn domain(&self) -> u64 {
        1
    }

    fn memory_spec(&self) -> MemorySpec {
        MemorySpec::bounded(InstructionSet::ReadWriteFetchIncrement, 1)
    }

    fn spawn(&self, pid: usize, input: u64) -> ValueDiverseProc {
        assert!(input < 1, "input out of domain");
        ValueDiverseProc {
            remaining: self.rounds,
            history: vec![mix(pid as u64)],
        }
    }
}

/// Per-process state of [`value_diverse_consensus`]: the mixed counter
/// values this process has absorbed, in order.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ValueDiverseProc {
    remaining: u32,
    history: Vec<u64>,
}

impl Process for ValueDiverseProc {
    fn action(&self) -> Action {
        if self.remaining == 0 {
            Action::Decide(0)
        } else {
            Action::Invoke(Op::single(0, Instruction::FetchAndIncrement))
        }
    }

    fn absorb(&mut self, result: Value) {
        let seen = result.as_u64().expect("counter fits a machine word");
        let mut prev = *self.history.last().expect("history starts non-empty");
        for lane in 0..BURST as u64 {
            prev = mix(seen ^ prev.rotate_left(17) ^ (lane << 56));
            self.history.push(prev);
        }
        self.remaining -= 1;
    }

    fn heap_bytes(&self) -> usize {
        // From the length, not the capacity: budget accounting must be a
        // deterministic function of the semantic state.
        self.history.len() * std::mem::size_of::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbh_sim::Machine;

    #[test]
    fn histories_diverge_under_different_interleavings() {
        let p = value_diverse_consensus(2);
        let base = Machine::start(&p, &[0, 0]).unwrap();
        // p0 then p1 vs p1 then p0: both processes end with one absorbed
        // value, but the values differ (0 vs 1), so the states differ.
        let ab = base.branch_step(0).unwrap().branch_step(1).unwrap();
        let ba = base.branch_step(1).unwrap().branch_step(0).unwrap();
        assert_ne!(ab.fingerprint(), ba.fingerprint());
    }

    #[test]
    fn state_bytes_grow_with_steps() {
        let p = value_diverse_consensus(2);
        let mut m = Machine::start(&p, &[0, 0]).unwrap();
        for _ in 0..10 {
            m.step(0).unwrap();
        }
        assert_eq!(m.process(0).history.len(), 1 + 10 * BURST);
        // Mixed words are pairwise distinct: nothing for an interner to share.
        let mut h = m.process(0).history.clone();
        h.sort_unstable();
        h.dedup();
        assert_eq!(h.len(), 1 + 10 * BURST);
    }
}
