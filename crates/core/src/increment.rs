//! Counters from `increment()` locations (Theorem 5.3 building block).
//!
//! A 2-component unbounded counter lives in two `{read, write, increment}`
//! locations — location `v` *is* component `v`, and since counts never
//! decrease, the double-collect algorithm yields a linearizable `scan()`.
//! Racing counters (Lemma 3.1) then give binary consensus on 2 locations,
//! and the bit-by-bit construction (Lemma 5.2, module [`crate::bitwise`])
//! lifts it to `n`-consensus on `O(log n)` locations.
//!
//! `fetch-and-increment()` simulates `increment()` by discarding the return
//! value, which covers the `{read, write(x), fetch-and-increment}` row too.
//! (Theorem 5.1 — also in `cbh-verify` as an executable adversary — shows a
//! *single* such location is not enough.)

use crate::counter::{CounterEvent, CounterFamily, CounterRequest, CounterSim};
use crate::racing::RacingConsensus;
use crate::util::{DoubleCollect, ReadKind};
use cbh_bigint::BigInt;
use cbh_model::{Instruction, InstructionSet, MemorySpec, Op, Value};

/// Which increment instruction the location set provides.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IncrementFlavor {
    /// `{read(), write(x), increment()}`.
    Increment,
    /// `{read(), write(x), fetch-and-increment()}` (result ignored).
    FetchAndIncrement,
}

impl IncrementFlavor {
    /// The memory's uniform instruction set.
    pub fn iset(self) -> InstructionSet {
        match self {
            IncrementFlavor::Increment => InstructionSet::ReadWriteIncrement,
            IncrementFlavor::FetchAndIncrement => InstructionSet::ReadWriteFetchIncrement,
        }
    }

    fn instruction(self) -> Instruction {
        match self {
            IncrementFlavor::Increment => Instruction::Increment,
            IncrementFlavor::FetchAndIncrement => Instruction::FetchAndIncrement,
        }
    }
}

/// An `m`-component counter on `m` increment locations (component `v` lives in
/// location `v`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IncrementCounterFamily {
    m: usize,
    flavor: IncrementFlavor,
}

impl IncrementCounterFamily {
    /// An `m`-component counter over `m` locations.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`.
    pub fn new(m: usize, flavor: IncrementFlavor) -> Self {
        assert!(m > 0, "need at least one component");
        IncrementCounterFamily { m, flavor }
    }
}

impl CounterFamily for IncrementCounterFamily {
    type Sim = IncrementCounterSim;

    fn m(&self) -> usize {
        self.m
    }

    fn name(&self) -> String {
        match self.flavor {
            IncrementFlavor::Increment => "increment-locations".into(),
            IncrementFlavor::FetchAndIncrement => "fetch-and-increment-locations".into(),
        }
    }

    fn memory_spec(&self) -> MemorySpec {
        MemorySpec::bounded(self.flavor.iset(), self.m)
    }

    fn spawn(&self, _pid: usize) -> IncrementCounterSim {
        IncrementCounterSim {
            m: self.m,
            flavor: self.flavor,
            pending: None,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum IncPending {
    Increment(usize),
    Scan(DoubleCollect),
}

/// Per-process state of the increment-locations counter.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct IncrementCounterSim {
    m: usize,
    flavor: IncrementFlavor,
    pending: Option<IncPending>,
}

impl CounterSim for IncrementCounterSim {
    fn m(&self) -> usize {
        self.m
    }

    fn supports_decrement(&self) -> bool {
        false
    }

    fn start(&mut self, req: CounterRequest) {
        assert!(self.pending.is_none(), "counter operation already in flight");
        self.pending = Some(match req {
            CounterRequest::Increment(v) => IncPending::Increment(v),
            CounterRequest::Scan => {
                IncPending::Scan(DoubleCollect::new((0..self.m).collect(), ReadKind::Read))
            }
            CounterRequest::Decrement(_) => panic!("increment counter has no decrement"),
        });
    }

    fn poised(&self) -> Op {
        match self.pending.as_ref().expect("no counter operation in flight") {
            IncPending::Increment(v) => Op::single(*v, self.flavor.instruction()),
            IncPending::Scan(dc) => dc.poised(),
        }
    }

    fn absorb(&mut self, result: Value) -> Option<CounterEvent> {
        match self.pending.as_mut().expect("no counter operation in flight") {
            IncPending::Increment(_) => {
                self.pending = None;
                Some(CounterEvent::Done)
            }
            IncPending::Scan(dc) => {
                let snap = dc.absorb(result)?;
                self.pending = None;
                let counts = snap
                    .iter()
                    .map(|v| v.as_int().expect("counters are integers").clone())
                    .collect::<Vec<BigInt>>();
                Some(CounterEvent::Counts(counts))
            }
        }
    }
}

/// Binary consensus on 2 increment locations: racing counters with `m = 2`
/// (the inner protocol of Theorem 5.3).
pub fn increment_binary(n: usize, flavor: IncrementFlavor) -> RacingConsensus<IncrementCounterFamily> {
    RacingConsensus::new(IncrementCounterFamily::new(2, flavor), n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbh_sim::{run_consensus, RandomScheduler, RoundRobinScheduler};

    #[test]
    fn binary_consensus_on_two_locations() {
        for flavor in [IncrementFlavor::Increment, IncrementFlavor::FetchAndIncrement] {
            let protocol = increment_binary(4, flavor);
            let inputs = [1, 0, 0, 1];
            for seed in 0..10 {
                let report =
                    run_consensus(&protocol, &inputs, RandomScheduler::seeded(seed), 1_000_000)
                        .unwrap();
                report.check(&inputs).unwrap();
                assert!(report.unanimous().is_some());
                assert_eq!(report.locations_touched, 2, "c = 2 locations");
            }
        }
    }

    #[test]
    fn unanimous_inputs_win() {
        let protocol = increment_binary(3, IncrementFlavor::Increment);
        let report = run_consensus(&protocol, &[1, 1, 1], RoundRobinScheduler::new(), 1_000_000)
            .unwrap();
        assert_eq!(report.unanimous(), Some(1));
        let report = run_consensus(&protocol, &[0, 0, 0], RoundRobinScheduler::new(), 1_000_000)
            .unwrap();
        assert_eq!(report.unanimous(), Some(0));
    }

    #[test]
    fn counter_scan_reads_location_values() {
        use cbh_model::Memory;
        let family = IncrementCounterFamily::new(3, IncrementFlavor::Increment);
        let mut mem = Memory::new(&family.memory_spec());
        let mut sim = family.spawn(0);
        for (v, times) in [(0usize, 2u32), (2, 5)] {
            for _ in 0..times {
                sim.start(CounterRequest::Increment(v));
                let r = mem.apply(&sim.poised()).unwrap();
                assert_eq!(sim.absorb(r), Some(CounterEvent::Done));
            }
        }
        sim.start(CounterRequest::Scan);
        let counts = loop {
            let r = mem.apply(&sim.poised()).unwrap();
            if let Some(CounterEvent::Counts(c)) = sim.absorb(r) {
                break c;
            }
        };
        let got: Vec<u64> = counts.iter().map(|c| c.to_u64().unwrap()).collect();
        assert_eq!(got, vec![2, 0, 5]);
    }
}
