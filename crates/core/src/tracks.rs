//! Racing tracks of binary locations (§9, Theorem 9.3 and the \[GR05\] idea).
//!
//! With only `read()` and `write(1)` (or `test-and-set()`, which simulates
//! `write(1)` by ignoring its result), a counter component becomes a *track*:
//! an unbounded sequence of single-bit locations set to 1 left to right. The
//! count of a track is the length of its all-ones prefix; counts only grow, so
//! a double-collect over track counts is a linearizable scan, and the racing
//! counters algorithm (Lemma 3.1) gives `n`-consensus — using unboundedly many
//! locations, which Theorem 9.2 (see `cbh-verify`) proves unavoidable.
//!
//! Concurrent "increments" of one track may set the same cell and merge; that
//! only slows non-leaders down and never breaks the racing argument (a solo
//! process's increments never merge).
//!
//! [`TrackCounterFamily`] also supports a *bounded* layout (fixed cells per
//! track). Bounded tracks are the substitute for Bowman's 2n-single-bit
//! binary consensus \[Bow11\] in Theorem 9.4's `O(n log n)` construction (see
//! `DESIGN.md`: the original technical report is not reproducible from the
//! paper; truncated tracks preserve the space shape but are obstruction-free
//! only while a track has free cells — overflowing one panics loudly).

use crate::counter::{CounterEvent, CounterFamily, CounterRequest, CounterSim};
use crate::racing::RacingConsensus;
use crate::util::BitWrite;
use cbh_bigint::BigInt;
use cbh_model::{Instruction, InstructionSet, MemorySpec, Op, Value};

/// Track layout: unbounded (interleaved) or bounded (contiguous per track).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrackLayout {
    /// Tracks grow forever; cell `k` of track `v` is location `k·m + v`.
    Unbounded,
    /// Each track has exactly `cells` locations; cell `k` of track `v` is
    /// location `v·cells + k`.
    Bounded {
        /// Cells per track.
        cells: usize,
    },
}

/// An `m`-component counter made of `m` tracks of binary locations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TrackCounterFamily {
    m: usize,
    write: BitWrite,
    layout: TrackLayout,
}

impl TrackCounterFamily {
    /// An `m`-track counter.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`, or if the layout is bounded with zero cells.
    pub fn new(m: usize, write: BitWrite, layout: TrackLayout) -> Self {
        assert!(m > 0, "need at least one track");
        if let TrackLayout::Bounded { cells } = layout {
            assert!(cells > 0, "bounded tracks need at least one cell");
        }
        TrackCounterFamily { m, write, layout }
    }

    fn cell_location(&self, track: usize, cell: usize) -> usize {
        match self.layout {
            TrackLayout::Unbounded => cell * self.m + track,
            TrackLayout::Bounded { cells } => {
                assert!(
                    cell < cells,
                    "track {track} overflowed its {cells} cells: the bounded-track \
                     substitute for [Bow11] ran past its capacity (see DESIGN.md)"
                );
                track * cells + cell
            }
        }
    }
}

impl CounterFamily for TrackCounterFamily {
    type Sim = TrackCounterSim;

    fn m(&self) -> usize {
        self.m
    }

    fn name(&self) -> String {
        let w = match self.write {
            BitWrite::Write1 => "write1",
            BitWrite::TestAndSet => "test-and-set",
        };
        match self.layout {
            TrackLayout::Unbounded => format!("unbounded-tracks[{w}]"),
            TrackLayout::Bounded { cells } => format!("bounded-tracks[{w}; {cells}]"),
        }
    }

    fn memory_spec(&self) -> MemorySpec {
        let iset = match self.write {
            BitWrite::Write1 => InstructionSet::ReadWrite1,
            BitWrite::TestAndSet => InstructionSet::ReadTas,
        };
        match self.layout {
            TrackLayout::Unbounded => MemorySpec::unbounded(iset),
            TrackLayout::Bounded { cells } => MemorySpec::bounded(iset, self.m * cells),
        }
    }

    fn spawn(&self, _pid: usize) -> TrackCounterSim {
        TrackCounterSim {
            family: *self,
            frontier: vec![0; self.m],
            pending: None,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum TrackPending {
    /// Probing for the first 0 cell of `track`, then writing it.
    Increment { track: usize, writing: bool },
    /// Collecting all track counts, twice, until stable.
    Scan {
        counts: Vec<u64>,
        track: usize,
        prev: Option<Vec<u64>>,
    },
}

/// Per-process state of the track counter.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TrackCounterSim {
    family: TrackCounterFamily,
    /// Per-track index of the first cell not known (to this process) to be 1.
    /// Monotone: cells are only ever set, never cleared.
    frontier: Vec<usize>,
    pending: Option<TrackPending>,
}

impl CounterSim for TrackCounterSim {
    fn m(&self) -> usize {
        self.family.m
    }

    fn supports_decrement(&self) -> bool {
        false
    }

    fn start(&mut self, req: CounterRequest) {
        assert!(self.pending.is_none(), "counter operation already in flight");
        self.pending = Some(match req {
            CounterRequest::Increment(v) => TrackPending::Increment {
                track: v,
                writing: false,
            },
            CounterRequest::Scan => TrackPending::Scan {
                counts: Vec::with_capacity(self.family.m),
                track: 0,
                prev: None,
            },
            CounterRequest::Decrement(_) => panic!("tracks have no decrement"),
        });
    }

    fn poised(&self) -> Op {
        match self.pending.as_ref().expect("no counter operation in flight") {
            TrackPending::Increment { track, writing } => {
                let loc = self.family.cell_location(*track, self.frontier[*track]);
                if *writing {
                    Op::single(loc, self.family.write.instruction())
                } else {
                    Op::single(loc, Instruction::Read)
                }
            }
            TrackPending::Scan { track, .. } => Op::single(
                self.family.cell_location(*track, self.frontier[*track]),
                Instruction::Read,
            ),
        }
    }

    fn absorb(&mut self, result: Value) -> Option<CounterEvent> {
        let pending = self.pending.as_mut().expect("no counter operation in flight");
        match pending {
            TrackPending::Increment { track, writing } => {
                if *writing {
                    // The cell is now 1 whether we or a concurrent process set
                    // it; either way the track advanced past our frontier.
                    self.frontier[*track] += 1;
                    self.pending = None;
                    return Some(CounterEvent::Done);
                }
                let bit = result.as_u64().expect("track cells hold bits");
                if bit == 1 {
                    self.frontier[*track] += 1; // keep probing rightward
                } else {
                    *writing = true;
                }
                None
            }
            TrackPending::Scan { counts, track, prev } => {
                let bit = result.as_u64().expect("track cells hold bits");
                if bit == 1 {
                    self.frontier[*track] += 1;
                    return None; // same track, next cell
                }
                // First 0: this track's count is the frontier.
                counts.push(self.frontier[*track] as u64);
                *track += 1;
                if *track < self.family.m {
                    return None;
                }
                // Collect finished; double-collect over the count vectors.
                let finished = std::mem::take(counts);
                *track = 0;
                if prev.as_ref() == Some(&finished) {
                    self.pending = None;
                    Some(CounterEvent::Counts(
                        finished.into_iter().map(BigInt::from).collect(),
                    ))
                } else {
                    *prev = Some(finished);
                    None
                }
            }
        }
    }
}

/// Theorem 9.3: `n`-consensus from unboundedly many `{read, write(1)}` or
/// `{read, test-and-set}` locations — racing counters over unbounded tracks.
///
/// # Examples
///
/// ```
/// use cbh_core::tracks::track_consensus;
/// use cbh_core::util::BitWrite;
/// use cbh_sim::{run_consensus, RandomScheduler};
///
/// let protocol = track_consensus(3, BitWrite::TestAndSet);
/// let inputs = [1, 2, 1];
/// let report = run_consensus(&protocol, &inputs, RandomScheduler::seeded(2), 1_000_000)
///     .unwrap();
/// report.check(&inputs).unwrap();
/// ```
pub fn track_consensus(n: usize, write: BitWrite) -> RacingConsensus<TrackCounterFamily> {
    RacingConsensus::new(
        TrackCounterFamily::new(n, write, TrackLayout::Unbounded),
        n,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbh_model::Memory;
    use cbh_sim::{run_consensus, Machine, RandomScheduler, RoundRobinScheduler};

    fn drive(
        sim: &mut TrackCounterSim,
        mem: &mut Memory,
        req: CounterRequest,
    ) -> CounterEvent {
        sim.start(req);
        loop {
            let r = mem.apply(&sim.poised()).unwrap();
            if let Some(ev) = sim.absorb(r) {
                return ev;
            }
        }
    }

    #[test]
    fn increments_extend_the_ones_prefix() {
        let family = TrackCounterFamily::new(2, BitWrite::Write1, TrackLayout::Unbounded);
        let mut mem = Memory::new(&family.memory_spec());
        let mut sim = family.spawn(0);
        for _ in 0..3 {
            drive(&mut sim, &mut mem, CounterRequest::Increment(1));
        }
        drive(&mut sim, &mut mem, CounterRequest::Increment(0));
        let ev = drive(&mut sim, &mut mem, CounterRequest::Scan);
        match ev {
            CounterEvent::Counts(c) => {
                assert_eq!(c[0].to_u64(), Some(1));
                assert_eq!(c[1].to_u64(), Some(3));
            }
            CounterEvent::Done => panic!("expected counts"),
        }
    }

    #[test]
    fn merged_increments_advance_at_least_once() {
        // Two processes race to increment the same track: the count grows by
        // at least 1 and at most 2.
        let family = TrackCounterFamily::new(1, BitWrite::Write1, TrackLayout::Unbounded);
        let mut mem = Memory::new(&family.memory_spec());
        let mut a = family.spawn(0);
        let mut b = family.spawn(1);
        a.start(CounterRequest::Increment(0));
        b.start(CounterRequest::Increment(0));
        // Interleave: both probe cell 0 (read 0), then both write it.
        loop {
            let mut progressed = false;
            for sim in [&mut a, &mut b] {
                if sim.pending.is_some() {
                    let r = mem.apply(&sim.poised()).unwrap();
                    sim.absorb(r);
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
        let ev = drive(&mut a, &mut mem, CounterRequest::Scan);
        match ev {
            CounterEvent::Counts(c) => {
                let count = c[0].to_u64().unwrap();
                assert!((1..=2).contains(&count), "merged count {count}");
            }
            CounterEvent::Done => panic!("expected counts"),
        }
    }

    #[test]
    fn consensus_with_write1_and_tas() {
        for write in [BitWrite::Write1, BitWrite::TestAndSet] {
            let protocol = track_consensus(3, write);
            let inputs = [2, 0, 2];
            for seed in 0..8 {
                let report =
                    run_consensus(&protocol, &inputs, RandomScheduler::seeded(seed), 2_000_000)
                        .unwrap();
                report.check(&inputs).unwrap();
                assert!(report.unanimous().is_some());
            }
            let report = run_consensus(&protocol, &inputs, RoundRobinScheduler::new(), 2_000_000)
                .unwrap();
            report.check(&inputs).unwrap();
        }
    }

    #[test]
    fn space_grows_with_contention_budget() {
        // The ∞ row made concrete: let the adversary interleave longer and
        // longer before the solo finish; touched locations keep growing.
        let protocol = track_consensus(2, BitWrite::Write1);
        let mut last = 0;
        for steps in [50u64, 400, 3000] {
            let report = cbh_sim::adversarial_then_solo(
                &protocol,
                &[0, 1],
                RandomScheduler::seeded(1),
                steps,
                1_000_000,
            )
            .unwrap();
            assert!(report.locations_touched >= last);
            last = report.locations_touched;
        }
        assert!(last > 4, "contended tracks consumed many locations, got {last}");
    }

    #[test]
    fn bounded_layout_is_contiguous_and_checked() {
        let family = TrackCounterFamily::new(2, BitWrite::Write1, TrackLayout::Bounded { cells: 4 });
        assert_eq!(family.cell_location(0, 3), 3);
        assert_eq!(family.cell_location(1, 0), 4);
        assert_eq!(family.memory_spec().bounded_len(), Some(8));
    }

    #[test]
    #[should_panic(expected = "overflowed")]
    fn bounded_overflow_panics_loudly() {
        let family = TrackCounterFamily::new(1, BitWrite::Write1, TrackLayout::Bounded { cells: 2 });
        let mut mem = Memory::new(&family.memory_spec());
        let mut sim = family.spawn(0);
        for _ in 0..3 {
            drive(&mut sim, &mut mem, CounterRequest::Increment(0));
        }
    }

    #[test]
    fn solo_decides() {
        let protocol = track_consensus(4, BitWrite::Write1);
        let mut machine = Machine::start(&protocol, &[1, 0, 2, 3]).unwrap();
        assert_eq!(machine.run_solo(2, 100_000).unwrap(), Some(2));
    }
}
