//! The racing-counters consensus algorithm (Lemmas 3.1 and 3.2).
//!
//! `m`-valued consensus from an `m`-component counter: associate component
//! `cᵥ` with input value `v`; every process alternates *promoting* a value
//! (incrementing its component) with *scanning* all components, and returns
//! `v` once `cᵥ` leads every other component by at least `n`.
//!
//! Two variants, chosen automatically from the counter's capabilities:
//!
//! - **Unbounded** (Lemma 3.1): promotion always increments.
//! - **Bounded** (Lemma 3.2): if some *other* component `c_u` has count
//!   `≥ n` in the promoter's latest scan, the promoter decrements `c_u`
//!   instead of incrementing; counts then provably stay in `0..=3n−1`, so the
//!   encoding of [`crate::counter::AddCounterFamily`] never overflows a digit.
//!
//! The generic [`RacingConsensus`] turns *any* [`CounterFamily`] into a
//! consensus [`Protocol`]; Theorems 3.3, 5.3, 6.3 and 9.3 all instantiate it.

use crate::counter::{CounterEvent, CounterFamily, CounterRequest, CounterSim};
use cbh_bigint::BigInt;
use cbh_model::{Action, MemorySpec, Process, Protocol, Value};

/// Racing-counters consensus over any counter family.
///
/// # Examples
///
/// ```
/// use cbh_core::counter::{MultiplyCounterFamily, MultiplyFlavor};
/// use cbh_core::racing::RacingConsensus;
/// use cbh_sim::{run_consensus, RoundRobinScheduler};
///
/// // Theorem 3.3: n-consensus from ONE {read, multiply} location.
/// let family = MultiplyCounterFamily::new(4, MultiplyFlavor::ReadMultiply);
/// let protocol = RacingConsensus::new(family, 4);
/// let report = run_consensus(&protocol, &[1, 3, 3, 0], RoundRobinScheduler::new(), 100_000)
///     .unwrap();
/// report.check(&[1, 3, 3, 0]).unwrap();
/// assert_eq!(report.locations_touched, 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RacingConsensus<F: CounterFamily> {
    family: F,
    n: usize,
}

impl<F: CounterFamily> RacingConsensus<F> {
    /// Racing consensus among `n` processes over `family`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn new(family: F, n: usize) -> Self {
        assert!(n >= 2, "consensus needs at least two processes");
        RacingConsensus { family, n }
    }

    /// The underlying counter family.
    pub fn family(&self) -> &F {
        &self.family
    }
}

impl<F: CounterFamily> Protocol for RacingConsensus<F> {
    type Proc = RacingProc<F::Sim>;

    fn name(&self) -> String {
        format!("racing-counters[{}]", self.family.name())
    }

    fn n(&self) -> usize {
        self.n
    }

    fn domain(&self) -> u64 {
        self.family.m() as u64
    }

    fn memory_spec(&self) -> MemorySpec {
        self.family.memory_spec()
    }

    fn spawn(&self, pid: usize, input: u64) -> Self::Proc {
        assert!((input as usize) < self.family.m(), "input out of domain");
        RacingProc::new(self.family.spawn(pid), self.n, input)
    }
}

/// Which step of the promote/scan loop the process is in.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Phase {
    /// Driving the counter through a promotion (inc or dec).
    Promoting,
    /// Driving the counter through a scan.
    Scanning,
    /// Decided.
    Done(u64),
}

/// The per-process racing-counters state machine.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RacingProc<S: CounterSim> {
    sim: S,
    n: u64,
    input: u64,
    phase: Phase,
}

impl<S: CounterSim> RacingProc<S> {
    fn new(mut sim: S, n: usize, input: u64) -> Self {
        let phase = if sim.supports_decrement() {
            // The bounded variant (Lemma 3.2) consults scan counts before each
            // promotion, so it must scan first; the unbounded variant promotes
            // its input immediately, as in Lemma 3.1.
            sim.start(CounterRequest::Scan);
            Phase::Scanning
        } else {
            sim.start(CounterRequest::Increment(input as usize));
            Phase::Promoting
        };
        RacingProc {
            sim,
            n: n as u64,
            input,
            phase,
        }
    }

    /// The value whose component leads all others by ≥ n, if any.
    fn winner(&self, counts: &[BigInt]) -> Option<usize> {
        let lead = BigInt::from(self.n);
        'outer: for (v, cv) in counts.iter().enumerate() {
            for (u, cu) in counts.iter().enumerate() {
                if u != v && *cv < cu + &lead {
                    continue 'outer;
                }
            }
            return Some(v);
        }
        None
    }

    /// The component with the largest count, ties broken towards the smallest
    /// index — except that from all-zero counts the process promotes its own
    /// input (validity: a component is only ever incremented once some
    /// process has promoted it, inductively an input value).
    ///
    /// Breaking ties *identically across processes* (smallest index) matters
    /// for liveness under symmetric schedulers like round-robin: if tied
    /// processes each favoured their own value, two components would grow in
    /// lockstep forever.
    fn promotion_target(&self, counts: &[BigInt]) -> usize {
        let max = counts.iter().max().expect("m ≥ 1 components");
        if max.is_zero() {
            return self.input as usize;
        }
        counts
            .iter()
            .position(|c| c == max)
            .expect("max exists")
    }

    /// Starts the next promotion per Lemma 3.1/3.2 using fresh scan counts.
    fn promote(&mut self, counts: &[BigInt]) {
        let target = self.promotion_target(counts);
        if self.sim.supports_decrement() {
            // Lemma 3.2: among the OTHER components let c_u be a largest one;
            // if c_u ≥ n, decrement c_u instead of incrementing the target.
            let other = counts
                .iter()
                .enumerate()
                .filter(|(w, _)| *w != target)
                .max_by(|(_, a), (_, b)| a.cmp(b));
            if let Some((u, cu)) = other {
                if *cu >= BigInt::from(self.n) {
                    self.sim.start(CounterRequest::Decrement(u));
                    self.phase = Phase::Promoting;
                    return;
                }
            }
        }
        self.sim.start(CounterRequest::Increment(target));
        self.phase = Phase::Promoting;
    }
}

impl<S: CounterSim> Process for RacingProc<S> {
    fn action(&self) -> Action {
        match &self.phase {
            Phase::Done(v) => Action::Decide(*v),
            _ => Action::Invoke(self.sim.poised()),
        }
    }

    fn absorb(&mut self, result: Value) {
        let Some(event) = self.sim.absorb(result) else {
            return; // counter operation still in progress
        };
        match (&self.phase, event) {
            (Phase::Promoting, CounterEvent::Done) => {
                self.sim.start(CounterRequest::Scan);
                self.phase = Phase::Scanning;
            }
            (Phase::Scanning, CounterEvent::Counts(counts)) => {
                if let Some(v) = self.winner(&counts) {
                    self.phase = Phase::Done(v as u64);
                } else {
                    self.promote(&counts);
                }
            }
            (phase, event) => {
                unreachable!("counter event {event:?} does not match phase {phase:?}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counter::{
        AddCounterFamily, AddFlavor, MultiplyCounterFamily, MultiplyFlavor, SetBitCounterFamily,
    };
    use cbh_sim::{run_consensus, ObstructionScheduler, RandomScheduler, RoundRobinScheduler};

    fn check_all_schedulers<F: CounterFamily>(family: F, n: usize, inputs: &[u64]) {
        let protocol = RacingConsensus::new(family, n);
        for seed in 0..5 {
            let report =
                run_consensus(&protocol, inputs, RandomScheduler::seeded(seed), 2_000_000)
                    .unwrap_or_else(|e| panic!("{}: {e}", protocol.name()));
            report.check(inputs).unwrap();
            assert!(report.unanimous().is_some());
            assert_eq!(report.locations_touched, 1, "one location suffices");
        }
        let report = run_consensus(&protocol, inputs, RoundRobinScheduler::new(), 2_000_000)
            .unwrap();
        report.check(inputs).unwrap();
        let report =
            run_consensus(&protocol, inputs, ObstructionScheduler::seeded(3, 16), 2_000_000)
                .unwrap();
        report.check(inputs).unwrap();
    }

    #[test]
    fn multiply_counter_solves_n_consensus() {
        check_all_schedulers(
            MultiplyCounterFamily::new(4, MultiplyFlavor::ReadMultiply),
            4,
            &[2, 0, 1, 2],
        );
    }

    #[test]
    fn fetch_and_multiply_alone_solves_n_consensus() {
        check_all_schedulers(
            MultiplyCounterFamily::new(3, MultiplyFlavor::FetchAndMultiply),
            3,
            &[1, 1, 2],
        );
    }

    #[test]
    fn bounded_add_counter_solves_n_consensus() {
        check_all_schedulers(AddCounterFamily::new(4, 4, AddFlavor::ReadAdd), 4, &[3, 3, 0, 1]);
    }

    #[test]
    fn fetch_and_add_alone_solves_n_consensus() {
        check_all_schedulers(
            AddCounterFamily::new(3, 3, AddFlavor::FetchAndAdd),
            3,
            &[0, 2, 2],
        );
    }

    #[test]
    fn set_bit_counter_solves_n_consensus() {
        check_all_schedulers(SetBitCounterFamily::new(4, 4), 4, &[1, 0, 3, 1]);
    }

    #[test]
    fn unanimous_inputs_decide_that_input() {
        let protocol = RacingConsensus::new(
            MultiplyCounterFamily::new(3, MultiplyFlavor::ReadMultiply),
            3,
        );
        let report =
            run_consensus(&protocol, &[2, 2, 2], RandomScheduler::seeded(11), 2_000_000).unwrap();
        assert_eq!(report.unanimous(), Some(2), "validity pins the decision");
    }

    #[test]
    fn solo_process_decides_quickly() {
        // Obstruction-freedom: a solo run promotes its own component until the
        // lead reaches n, i.e. about n promote+scan pairs.
        let protocol = RacingConsensus::new(
            MultiplyCounterFamily::new(4, MultiplyFlavor::ReadMultiply),
            4,
        );
        let mut machine = cbh_sim::Machine::start(&protocol, &[3, 0, 1, 2]).unwrap();
        let decided = machine.run_solo(0, 100).unwrap();
        assert_eq!(decided, Some(3));
        assert!(machine.steps() <= 3 * 4 + 6, "solo decision is fast");
    }

    #[test]
    fn bounded_counts_stay_in_range_under_adversary() {
        // Exercise the Lemma 3.2 redistribution: many processes, small m.
        let family = AddCounterFamily::new(2, 6, AddFlavor::ReadAdd);
        let protocol = RacingConsensus::new(family, 6);
        let inputs = [0, 1, 0, 1, 0, 1];
        for seed in 0..10 {
            let report =
                run_consensus(&protocol, &inputs, RandomScheduler::seeded(seed), 4_000_000)
                    .unwrap();
            report.check(&inputs).unwrap();
        }
    }
}
