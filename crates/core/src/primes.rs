//! Small prime utilities.
//!
//! Theorem 3.3 encodes an `n`-component counter as a product of the first `n`
//! primes; Theorem 4.2 needs a fixed prime `y > n` for its `(r, x) ↦ (x+1)·yʳ`
//! max-register encoding. Both only ever need machine-word-sized primes.

/// Returns `true` if `v` is prime (trial division; fine for the model's sizes).
pub fn is_prime(v: u64) -> bool {
    if v < 2 {
        return false;
    }
    if v.is_multiple_of(2) {
        return v == 2;
    }
    let mut d: u64 = 3;
    while d.saturating_mul(d) <= v {
        if v.is_multiple_of(d) {
            return false;
        }
        d += 2;
    }
    true
}

/// The smallest prime strictly greater than `v`.
///
/// # Examples
///
/// ```
/// assert_eq!(cbh_core::primes::next_prime(10), 11);
/// assert_eq!(cbh_core::primes::next_prime(11), 13);
/// ```
pub fn next_prime(v: u64) -> u64 {
    let mut c = v + 1;
    while !is_prime(c) {
        c += 1;
    }
    c
}

/// The first `count` primes: `p₀ = 2, p₁ = 3, …` — Theorem 3.3 associates
/// component `cᵥ` with the `(v+1)`-st prime `p_v`.
pub fn first_primes(count: usize) -> Vec<u64> {
    let mut out = Vec::with_capacity(count);
    let mut c = 2;
    while out.len() < count {
        if is_prime(c) {
            out.push(c);
        }
        c += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primality_small_cases() {
        let primes: Vec<u64> = (0..30).filter(|&v| is_prime(v)).collect();
        assert_eq!(primes, vec![2, 3, 5, 7, 11, 13, 17, 19, 23, 29]);
    }

    #[test]
    fn first_primes_matches_known_list() {
        assert_eq!(first_primes(8), vec![2, 3, 5, 7, 11, 13, 17, 19]);
        assert!(first_primes(0).is_empty());
    }

    #[test]
    fn next_prime_is_strict() {
        assert_eq!(next_prime(0), 2);
        assert_eq!(next_prime(2), 3);
        assert_eq!(next_prime(13), 17);
        assert_eq!(next_prime(89), 97);
    }

    #[test]
    fn large_square_free_boundary() {
        assert!(is_prime(7919));
        assert!(!is_prime(7919 * 7919));
    }
}
