//! Every upper-bound protocol of the space hierarchy.
//!
//! This crate implements the algorithmic content of *"A Complexity-Based
//! Hierarchy for Multiprocessor Synchronization"* (PODC 2016): for each row of
//! Table 1, the obstruction-free consensus protocol witnessing the row's
//! *upper* bound, plus the object simulations those protocols are built from.
//!
//! | Paper | Module |
//! |---|---|
//! | §1 intro examples (faa+tas, dec+mul) | [`intro`] |
//! | Lemmas 3.1/3.2 racing counters | [`racing`] |
//! | Theorem 3.3 one-location counters (multiply/add/set-bit) | [`counter`] |
//! | Theorem 4.2 two max-registers | [`maxreg`] |
//! | Lemma 5.2 bit-by-bit reduction, Theorems 5.3/9.4 | [`bitwise`] |
//! | Theorem 5.3 increment-based binary consensus | [`increment`] |
//! | Lemmas 6.1/6.2 + Theorem 6.3 `ℓ`-buffers | [`buffer`] |
//! | §8 Algorithm 1 (swap/read, anonymous, `n−1` locations) | [`swap`] |
//! | Theorem 9.3 unbounded binary tracks | [`tracks`] |
//! | compare-and-swap row | [`cas`] |
//! | `{read, write(x)}` row (`n` registers) | [`registers`] |
//! | Table 1 as data | [`hierarchy`] |
//! | Table 1 as constructors (fuzzer registry) | [`registry`] |
//!
//! All protocols implement [`cbh_model::Protocol`] and run on `cbh-sim`'s
//! machine — or on real threads via `cbh-sync`.
//!
//! # Examples
//!
//! ```
//! use cbh_core::maxreg::MaxRegConsensus;
//! use cbh_sim::{run_consensus, RandomScheduler};
//!
//! let protocol = MaxRegConsensus::new(4);
//! let report = run_consensus(&protocol, &[2, 0, 3, 2], RandomScheduler::seeded(7), 100_000)
//!     .unwrap();
//! report.check(&[2, 0, 3, 2]).unwrap();
//! assert!(report.unanimous().is_some());
//! assert_eq!(report.locations_touched, 2, "Theorem 4.2: two max-registers");
//! ```

pub mod bitwise;
pub mod buffer;
pub mod cas;
pub mod counter;
pub mod hetero;
pub mod hierarchy;
pub mod increment;
pub mod intro;
pub mod maxreg;
pub mod primes;
pub mod racing;
pub mod registers;
pub mod registry;
pub mod stress;
pub mod swap;
pub mod tracks;
pub mod util;
