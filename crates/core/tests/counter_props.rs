//! Property tests for the counter simulations: under *arbitrary
//! instruction-level interleavings*, a quiescent scan returns exactly the
//! number of increments issued per component (for the non-merging counters —
//! racing tracks may merge concurrent increments and are tested separately).

use cbh_core::buffer::BufferCounterFamily;
use cbh_core::counter::{
    AddCounterFamily, AddFlavor, CounterEvent, CounterFamily, CounterRequest, CounterSim,
    MultiplyCounterFamily, MultiplyFlavor, SetBitCounterFamily,
};
use cbh_core::hetero::HeteroBufferCounterFamily;
use cbh_core::increment::{IncrementCounterFamily, IncrementFlavor};
use cbh_core::registers::RegisterCounterFamily;
use cbh_core::tracks::{TrackCounterFamily, TrackLayout};
use cbh_core::util::BitWrite;
use cbh_model::Memory;
use proptest::prelude::*;

/// Drives `ops[i] = (pid, component)` increments to completion under the
/// interleaving dictated by `schedule` (indices into the set of unfinished
/// sims), then scans from pid 0 and returns the per-component totals.
fn interleaved_totals<F: CounterFamily>(
    family: &F,
    n: usize,
    ops: &[(usize, usize)],
    schedule: &[usize],
) -> (Vec<u64>, Vec<u64>) {
    let mut mem = Memory::new(&family.memory_spec());
    let mut sims: Vec<F::Sim> = (0..n).map(|p| family.spawn(p)).collect();
    // Queue of increments per pid, in order.
    let mut queues: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut expect = vec![0u64; family.m()];
    for &(pid, v) in ops {
        let v = v % family.m();
        queues[pid % n].push(v);
        expect[v] += 1;
    }
    for q in queues.iter_mut() {
        q.reverse(); // pop from the back
    }
    let mut in_flight: Vec<bool> = vec![false; n];
    let mut sched = schedule.iter().copied().cycle();
    loop {
        let busy: Vec<usize> = (0..n)
            .filter(|&p| in_flight[p] || !queues[p].is_empty())
            .collect();
        if busy.is_empty() {
            break;
        }
        let pick = busy[sched.next().unwrap_or(0) % busy.len()];
        if !in_flight[pick] {
            let v = queues[pick].pop().expect("busy implies work");
            sims[pick].start(CounterRequest::Increment(v));
            in_flight[pick] = true;
        }
        let r = mem.apply(&sims[pick].poised()).expect("in-model");
        if sims[pick].absorb(r).is_some() {
            in_flight[pick] = false;
        }
    }
    // Quiescent scan.
    sims[0].start(CounterRequest::Scan);
    let counts = loop {
        let r = mem.apply(&sims[0].poised()).expect("in-model");
        if let Some(CounterEvent::Counts(c)) = sims[0].absorb(r) {
            break c;
        }
    };
    (
        counts.iter().map(|c| c.to_u64().expect("small")).collect(),
        expect,
    )
}

fn ops_strategy(n: usize, m: usize) -> impl Strategy<Value = Vec<(usize, usize)>> {
    proptest::collection::vec((0..n, 0..m), 0..25)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn multiply_counter_exact(ops in ops_strategy(3, 3),
                              sched in proptest::collection::vec(0usize..3, 1..40)) {
        let family = MultiplyCounterFamily::new(3, MultiplyFlavor::ReadMultiply);
        let (got, expect) = interleaved_totals(&family, 3, &ops, &sched);
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn add_counter_exact(ops in ops_strategy(3, 2),
                         sched in proptest::collection::vec(0usize..3, 1..40)) {
        // Keep per-component counts below the 3n digit bound by capping ops.
        let family = AddCounterFamily::new(2, 5, AddFlavor::ReadAdd);
        let capped: Vec<_> = ops.into_iter().take(14).collect();
        let (got, expect) = interleaved_totals(&family, 3, &capped, &sched);
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn set_bit_counter_exact(ops in ops_strategy(4, 3),
                             sched in proptest::collection::vec(0usize..4, 1..40)) {
        let family = SetBitCounterFamily::new(3, 4);
        let (got, expect) = interleaved_totals(&family, 4, &ops, &sched);
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn increment_locations_exact(ops in ops_strategy(3, 2),
                                 sched in proptest::collection::vec(0usize..3, 1..40)) {
        let family = IncrementCounterFamily::new(2, IncrementFlavor::Increment);
        let (got, expect) = interleaved_totals(&family, 3, &ops, &sched);
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn register_counter_exact(ops in ops_strategy(3, 3),
                              sched in proptest::collection::vec(0usize..3, 1..40)) {
        let family = RegisterCounterFamily::new(3, 3);
        let (got, expect) = interleaved_totals(&family, 3, &ops, &sched);
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn buffer_counter_exact(ops in ops_strategy(4, 2),
                            sched in proptest::collection::vec(0usize..4, 1..40),
                            ell in 1usize..4) {
        let family = BufferCounterFamily::new(2, 4, ell);
        let (got, expect) = interleaved_totals(&family, 4, &ops, &sched);
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn hetero_buffer_counter_exact(ops in ops_strategy(4, 2),
                                   sched in proptest::collection::vec(0usize..4, 1..40)) {
        let family = HeteroBufferCounterFamily::new(2, 4, vec![2, 1, 1]);
        let (got, expect) = interleaved_totals(&family, 4, &ops, &sched);
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn track_counter_bounds(ops in ops_strategy(3, 2),
                            sched in proptest::collection::vec(0usize..3, 1..40)) {
        // Tracks may merge concurrent increments of one component: totals are
        // bounded above by the issued counts and below by the per-process max
        // contribution (no increment by a solo-owner component is lost), and
        // never exceed the issued counts.
        let family = TrackCounterFamily::new(2, BitWrite::Write1, TrackLayout::Unbounded);
        let (got, expect) = interleaved_totals(&family, 3, &ops, &sched);
        for v in 0..2 {
            prop_assert!(got[v] <= expect[v], "component {v}: {} > {}", got[v], expect[v]);
            if expect[v] > 0 {
                prop_assert!(got[v] >= 1, "component {v} lost everything");
            }
        }
    }

    #[test]
    fn sequential_track_counter_exact(ops in proptest::collection::vec((0usize..1, 0usize..2), 0..25)) {
        // Without concurrency there is no merging: totals are exact.
        let family = TrackCounterFamily::new(2, BitWrite::TestAndSet, TrackLayout::Unbounded);
        let (got, expect) = interleaved_totals(&family, 1, &ops, &[0]);
        prop_assert_eq!(got, expect);
    }
}
