//! # space-hierarchy
//!
//! A reproduction of *"A Complexity-Based Hierarchy for Multiprocessor
//! Synchronization"* (Ellen, Gelashvili, Shavit, Zhu — PODC 2016) as a Rust
//! workspace. This facade crate re-exports the workspace's public API:
//!
//! - [`bigint`] — unbounded integers (memory words);
//! - [`model`] — the shared-memory machine: values, instructions, uniform
//!   instruction sets, memory, processes;
//! - [`sim`] — deterministic executor, adversarial schedulers, consensus
//!   run checking;
//! - [`protocols`] — every upper-bound algorithm of Table 1;
//! - [`sync`] — thread-backed runtime and native concurrent objects;
//! - [`verify`] — executable lower-bound adversaries and bounded model
//!   checking;
//! - [`random`] — the obstruction-free → randomized wait-free transform;
//! - [`conformance`] — differential backend oracle: scenario fuzzing over
//!   every Table-1 row, divergence detection, counterexample shrinking.
//!
//! See `README.md` for a tour and `DESIGN.md` for the paper-to-module map.
//!
//! # Examples
//!
//! Solve 8-process consensus with two max-registers (Theorem 4.2) under a
//! seeded adversarial scheduler and check agreement and validity:
//!
//! ```
//! use space_hierarchy::protocols::maxreg::MaxRegConsensus;
//! use space_hierarchy::sim::{run_consensus, RandomScheduler};
//!
//! let protocol = MaxRegConsensus::new(8);
//! let inputs: Vec<u64> = (0..8).map(|pid| (pid as u64 * 3) % 8).collect();
//! let outcome = run_consensus(&protocol, &inputs, RandomScheduler::seeded(42), 1_000_000);
//! let report = outcome.expect("protocol runs without model errors");
//! report.check(&inputs).expect("agreement and validity hold");
//! ```

pub use cbh_bigint as bigint;
pub use cbh_conformance as conformance;
pub use cbh_model as model;
pub use cbh_random as random;
pub use cbh_sim as sim;
pub use cbh_sync as sync;
pub use cbh_verify as verify;

/// The paper's protocols (crate `cbh-core`), re-exported under a clearer name.
pub use cbh_core as protocols;
