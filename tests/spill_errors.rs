//! Typed spill-failure surface: when the spill directory is unusable, a
//! budgeted run must return a clean [`SimError::Spill`] — never panic inside
//! a worker, never hang the pool, never report a partial outcome as clean.
//!
//! The whole suite is one `#[test]` because it owns the `CBH_SPILL_DIR`
//! process environment variable (same discipline as `spill_hygiene.rs`): it
//! points every arena of this process at a directory that does not exist, so
//! the first spill write fails with a typed `SpillError::Create` that each
//! engine must map to the error outcome.

use space_hierarchy::protocols::bitwise::tas_reset_consensus;
use space_hierarchy::sim::SimError;
use space_hierarchy::verify::checker::{explore_stats, ExploreLimits, Explorer};
use space_hierarchy::verify::legacy::legacy_explore_stats;

fn assert_spill_error(err: SimError, context: &str) {
    match err {
        SimError::Spill { detail } => {
            assert!(
                detail.contains("create spill arena"),
                "{context}: unexpected spill detail {detail:?}"
            );
        }
        other => panic!("{context}: expected SimError::Spill, got {other:?}"),
    }
}

#[test]
fn unusable_spill_dir_surfaces_as_a_clean_error() {
    // A directory that does not exist (and whose parent does not either):
    // `create_new` fails before a single byte is written. This is the
    // portable stand-in for disk-full/permission failures — all three arrive
    // through the same typed `SpillError` channel.
    let missing = std::env::temp_dir().join(format!(
        "cbh-spill-errors-{}-missing/child",
        std::process::id()
    ));
    assert!(!missing.exists());
    std::env::set_var("CBH_SPILL_DIR", &missing);

    let limits = ExploreLimits {
        depth: 8,
        max_configs: 100_000,
        solo_check_budget: None,
        // Zero budget: the very first frontier push must spill, so the
        // failure fires at the start of the run on every engine.
        memory_budget: Some(0),
        checkpoint_every: None,
    };

    // -- sequential packed engine ------------------------------------------
    let err = explore_stats(&tas_reset_consensus(3), &[0, 1, 2], limits)
        .expect_err("sequential run must fail to spill");
    assert_spill_error(err, "sequential packed engine");

    // -- parallel entry point ----------------------------------------------
    // The budgeted probe hits the same failing arena; either way the caller
    // sees one clean typed error and every thread shuts down.
    let err = Explorer::new()
        .workers(8)
        .limits(limits)
        .explore_stats(&tas_reset_consensus(3), &[0, 1, 2])
        .expect_err("parallel run must fail to spill");
    assert_spill_error(err, "parallel packed engine");

    // -- legacy barrier engine ---------------------------------------------
    for workers in [1, 4] {
        let err = legacy_explore_stats(&tas_reset_consensus(3), &[0, 1, 2], limits, workers, false)
            .expect_err("legacy run must fail to spill");
        assert_spill_error(err, "legacy barrier engine");
    }

    // An unbudgeted run never touches the spill dir, so the same pointing
    // environment must be harmless without a budget.
    let unbounded = ExploreLimits {
        memory_budget: None,
        ..limits
    };
    let (outcome, stats) = explore_stats(&tas_reset_consensus(3), &[0, 1, 2], unbounded)
        .expect("unbudgeted run never spills");
    assert!(outcome.is_clean(), "{outcome:?}");
    assert_eq!(stats.bytes_spilled, 0);

    std::env::remove_var("CBH_SPILL_DIR");
}
