//! Temp-dir hygiene for the spillable frontier: arena files must be deleted
//! on normal exit **and** when a run unwinds — whether the panic starts on
//! the committer thread (sequential engine) or inside a pool worker (the
//! packed engine's `StopGuard` release path).
//!
//! The whole suite is one `#[test]` because it owns the `CBH_SPILL_DIR`
//! process environment variable: the spill arenas of every phase land in
//! one fresh directory this test creates, watches and removes.

use space_hierarchy::model::{Action, Op, Process, Protocol, Value};
use space_hierarchy::protocols::bitwise::tas_reset_consensus;
use space_hierarchy::verify::checker::{explore_stats, ExploreLimits, Explorer};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};

/// Counts the spill files currently in `dir`.
fn spill_files(dir: &Path) -> Vec<PathBuf> {
    std::fs::read_dir(dir)
        .expect("spill dir exists")
        .map(|e| e.expect("dir entry").path())
        .collect()
}

// ---------------------------------------------------------------------------
// A protocol whose processes detonate at a chosen depth
// ---------------------------------------------------------------------------

/// Fetch-and-increments forever; panics when a process has absorbed `fuse`
/// results. Every interleaving of observed counter values is a distinct
/// configuration, so the state space is 3^depth — wide enough to push the
/// parallel engine past its sequential-probe threshold before the fuse
/// burns.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct FuseProc {
    seen: Vec<u64>,
    fuse: usize,
}

impl Process for FuseProc {
    fn action(&self) -> Action {
        Action::Invoke(Op::single(0, space_hierarchy::model::Instruction::FetchAndIncrement))
    }

    fn absorb(&mut self, result: Value) {
        self.seen.push(result.as_u64().unwrap_or(0));
        assert!(self.seen.len() < self.fuse, "injected fuse panic");
    }
}

struct FuseProtocol {
    n: usize,
    fuse: usize,
}

impl Protocol for FuseProtocol {
    type Proc = FuseProc;

    fn n(&self) -> usize {
        self.n
    }

    fn domain(&self) -> u64 {
        self.n as u64
    }

    fn name(&self) -> String {
        format!("fuse({})", self.fuse)
    }

    fn memory_spec(&self) -> space_hierarchy::model::MemorySpec {
        space_hierarchy::model::MemorySpec::bounded(
            space_hierarchy::model::InstructionSet::ReadWriteFetchIncrement,
            1,
        )
    }

    fn spawn(&self, _pid: usize, _input: u64) -> FuseProc {
        FuseProc {
            seen: Vec::new(),
            fuse: self.fuse,
        }
    }
}

#[test]
fn spill_arenas_are_deleted_on_exit_and_on_panic() {
    let dir = std::env::temp_dir().join(format!("cbh-spill-hygiene-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create spill dir");
    // Every arena of this process now lands in the watched directory. Safe
    // to set: this file is its own test binary and runs the one test.
    std::env::set_var("CBH_SPILL_DIR", &dir);

    // -- normal exit, sequential engine -----------------------------------
    let limits = ExploreLimits {
        depth: 8,
        max_configs: 100_000,
        solo_check_budget: None,
        memory_budget: Some(0),
        checkpoint_every: None,
    };
    let (outcome, stats) = explore_stats(&tas_reset_consensus(3), &[0, 1, 2], limits).unwrap();
    assert!(outcome.is_clean(), "{outcome:?}");
    assert!(stats.bytes_spilled > 0, "the run must have spilled");
    assert_eq!(
        spill_files(&dir),
        Vec::<PathBuf>::new(),
        "files survived a normal sequential exit"
    );

    // -- normal exit, work-stealing pool ----------------------------------
    let (outcome, stats) = Explorer::new()
        .workers(4)
        .limits(ExploreLimits {
            depth: 9,
            ..limits
        })
        .explore_stats(&tas_reset_consensus(3), &[0, 1, 2])
        .unwrap();
    assert!(outcome.is_clean(), "{outcome:?}");
    assert!(stats.bytes_spilled > 0);
    assert_eq!(
        spill_files(&dir),
        Vec::<PathBuf>::new(),
        "files survived a normal pool exit"
    );

    // Silence the expected panic spew (worker threads print otherwise).
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    // -- panic on the committer thread (sequential engine) -----------------
    // Fuse 4 burns at depth ~10 of a 3-process walk; the budget keeps every
    // earlier layer spilling first.
    let result = catch_unwind(AssertUnwindSafe(|| {
        explore_stats(&FuseProtocol { n: 3, fuse: 4 }, &[0, 1, 2], limits)
    }));
    assert!(result.is_err(), "the fuse must burn");
    assert_eq!(
        spill_files(&dir),
        Vec::<PathBuf>::new(),
        "files survived a sequential panic unwind"
    );

    // -- panic inside a pool worker (StopGuard path) -----------------------
    // 3^7 = 2187 distinct configurations precede the first fuse-8 node, so
    // the parallel entry's 1024-config sequential probe overflows cleanly
    // and the real pool is running — with spilled deques and reorder buffer
    // — when a worker detonates. The StopGuard wakes the committer, whose
    // "worker terminated abnormally" assert unwinds through every store.
    let result = catch_unwind(AssertUnwindSafe(|| {
        Explorer::new()
            .workers(4)
            .limits(ExploreLimits {
                depth: 12,
                ..limits
            })
            .explore_stats(&FuseProtocol { n: 3, fuse: 8 }, &[0, 1, 2])
    }));
    assert!(result.is_err(), "the pooled fuse must burn");
    assert_eq!(
        spill_files(&dir),
        Vec::<PathBuf>::new(),
        "files survived a worker panic (StopGuard) unwind"
    );

    std::panic::set_hook(default_hook);
    std::env::remove_var("CBH_SPILL_DIR");
    std::fs::remove_dir(&dir).expect("watched dir is empty and removable");
}
