//! Exhaustive semantics matrix: every instruction against every uniform
//! instruction set, plus per-instruction behavioural contracts — Section 2's
//! model pinned down test by test.

use space_hierarchy::bigint::BigInt;
use space_hierarchy::model::{
    CellState, Instruction, InstructionSet, Memory, MemorySpec, ModelError, Op, Value,
};

/// One representative instruction per membership class.
fn representatives() -> Vec<Instruction> {
    use Instruction as I;
    vec![
        I::Read,
        I::write(0),
        I::write(1),
        I::write(7),
        I::Swap(Value::int(3)),
        I::CompareAndSwap {
            expected: Value::zero(),
            new: Value::one(),
        },
        I::TestAndSet,
        I::Reset,
        I::fetch_and_add(2),
        I::fetch_and_add(1),
        I::add(5),
        I::Increment,
        I::Decrement,
        I::FetchAndIncrement,
        I::multiply(3),
        I::FetchAndMultiply(BigInt::from(3u64)),
        I::SetBit(4),
        I::ReadMax,
        I::WriteMax(Value::int(9)),
        I::BufferRead,
        I::BufferWrite(Value::int(1)),
    ]
}

/// The full membership matrix, spelled out. A change in any set's membership
/// must be a conscious edit here.
#[test]
fn uniformity_membership_matrix() {
    use Instruction as I;
    use InstructionSet as S;
    let expect = |iset: S, instr: &Instruction| -> bool {
        match iset {
            S::ReadTas => matches!(instr, I::Read | I::TestAndSet),
            S::ReadWrite1 => {
                matches!(instr, I::Read) || matches!(instr, I::Write(v) if v.as_u64() == Some(1))
            }
            S::ReadWrite01 => {
                matches!(instr, I::Read)
                    || matches!(instr, I::Write(v) if matches!(v.as_u64(), Some(0) | Some(1)))
            }
            S::ReadWrite => matches!(instr, I::Read | I::Write(_)),
            S::ReadTasReset => matches!(instr, I::Read | I::TestAndSet | I::Reset),
            S::ReadSwap => matches!(instr, I::Read | I::Swap(_)),
            S::Buffer(_) => matches!(instr, I::BufferRead | I::BufferWrite(_)),
            S::ReadWriteIncrement => matches!(instr, I::Read | I::Write(_) | I::Increment),
            S::ReadWriteFetchIncrement => {
                matches!(instr, I::Read | I::Write(_) | I::FetchAndIncrement)
            }
            S::MaxRegister => matches!(instr, I::ReadMax | I::WriteMax(_)),
            S::Cas => matches!(instr, I::CompareAndSwap { .. }),
            S::ReadSetBit => matches!(instr, I::Read | I::SetBit(_)),
            S::ReadAdd => matches!(instr, I::Read | I::Add(_)),
            S::ReadMultiply => matches!(instr, I::Read | I::Multiply(_)),
            S::FetchAndAdd => matches!(instr, I::FetchAndAdd(_)),
            S::FetchAndMultiply => matches!(instr, I::FetchAndMultiply(_)),
            S::FaaTas => {
                matches!(instr, I::TestAndSet)
                    || matches!(instr, I::FetchAndAdd(x) if *x == BigInt::from(2u64))
            }
            S::ReadDecMul => matches!(instr, I::Read | I::Decrement | I::Multiply(_)),
        }
    };
    for iset in InstructionSet::ALL {
        for instr in representatives() {
            assert_eq!(
                iset.supports(&instr),
                expect(iset, &instr),
                "{iset} vs {instr}"
            );
        }
    }
}

#[test]
fn memory_rejects_exactly_the_out_of_set_instructions() {
    for iset in InstructionSet::ALL {
        let spec = MemorySpec::bounded(iset, 1).with_initial(vec![Value::zero()]);
        for instr in representatives() {
            let mut mem = Memory::new(&spec);
            let out = mem.apply(&Op::single(0, instr.clone()));
            if iset.supports(&instr) {
                // In-set instructions may still hit a type mismatch (e.g.
                // CAS set initialises to Int 0 — fine), but never a
                // uniformity error.
                if let Err(e) = out {
                    assert!(
                        !matches!(e, ModelError::UnsupportedInstruction { .. }),
                        "{iset} wrongly rejected {instr}: {e}"
                    );
                }
            } else {
                assert!(
                    matches!(out, Err(ModelError::UnsupportedInstruction { .. })),
                    "{iset} wrongly accepted {instr}"
                );
            }
        }
    }
}

#[test]
fn every_trivial_instruction_leaves_the_cell_unchanged() {
    let mut word = CellState::word(Value::int(17));
    let before = word.clone();
    word.apply(&Instruction::Read).unwrap();
    word.apply(&Instruction::ReadMax).unwrap();
    assert_eq!(word, before);

    let mut buf = CellState::buffer(2);
    buf.apply(&Instruction::BufferWrite(Value::int(5))).unwrap();
    let before = buf.clone();
    buf.apply(&Instruction::BufferRead).unwrap();
    assert_eq!(buf, before);
}

#[test]
fn nontrivial_instructions_report_their_write_sets() {
    for instr in representatives() {
        let op = Op::single(3, instr.clone());
        if instr.is_trivial() {
            assert!(op.writes().is_empty(), "{instr}");
        } else {
            assert_eq!(op.writes(), vec![3], "{instr}");
        }
        assert_eq!(op.touches(), vec![3], "{instr}");
    }
}

#[test]
fn paper_intro_protocol_algebra() {
    // The fetch-and-add(2)/test-and-set location from §1, replayed by hand:
    // parity records whether a TAS arrived first.
    let spec = MemorySpec::bounded(InstructionSet::FaaTas, 1);
    // Case A: faa(2) first.
    let mut mem = Memory::new(&spec);
    assert_eq!(
        mem.apply(&Op::single(0, Instruction::fetch_and_add(2))).unwrap(),
        Value::int(0)
    );
    assert_eq!(
        mem.apply(&Op::single(0, Instruction::TestAndSet)).unwrap(),
        Value::int(2),
        "TAS returns the even value and leaves it alone"
    );
    assert_eq!(
        mem.apply(&Op::single(0, Instruction::fetch_and_add(2))).unwrap(),
        Value::int(2),
        "still even forever"
    );
    // Case B: TAS first.
    let mut mem = Memory::new(&spec);
    assert_eq!(
        mem.apply(&Op::single(0, Instruction::TestAndSet)).unwrap(),
        Value::int(0)
    );
    assert_eq!(
        mem.apply(&Op::single(0, Instruction::fetch_and_add(2))).unwrap(),
        Value::int(1),
        "odd: the low bit is set for good"
    );
    assert_eq!(
        mem.apply(&Op::single(0, Instruction::TestAndSet)).unwrap(),
        Value::int(3),
        "remains odd"
    );
}

#[test]
fn dec_mul_sign_invariant() {
    // §1 example 2: sign is decided by whether a decrement precedes the
    // first multiply. Checked over all interleavings of 2 decs and 2 muls.
    let spec = MemorySpec::bounded(InstructionSet::ReadDecMul, 1)
        .with_initial(vec![Value::one()]);
    // All 6 orders of {d,d,m,m}:
    let orders: Vec<Vec<char>> = vec![
        "ddmm", "dmdm", "dmmd", "mdmd", "mddm", "mmdd",
    ]
    .into_iter()
    .map(|s| s.chars().collect())
    .collect();
    for order in orders {
        let mut mem = Memory::new(&spec);
        let dec_first = order[0] == 'd';
        for &c in &order {
            let instr = if c == 'd' {
                Instruction::Decrement
            } else {
                Instruction::multiply(4)
            };
            mem.apply(&Op::single(0, instr)).unwrap();
            let v = mem.apply(&Op::read(0)).unwrap();
            let positive = v.as_int().unwrap().is_positive();
            assert_eq!(
                positive, !dec_first,
                "order {order:?}: sign fixed by the first modifying op"
            );
        }
    }
}

#[test]
fn heterogeneous_buffer_capacities_apply_per_location() {
    let spec = MemorySpec::bounded(InstructionSet::Buffer(3), 3)
        .with_buffer_capacities(vec![1, 2]);
    let mut mem = Memory::new(&spec);
    for loc in 0..3 {
        for k in 0..4 {
            mem.apply(&Op::single(loc, Instruction::BufferWrite(Value::int(k))))
                .unwrap();
        }
    }
    let len_of = |mem: &mut Memory, loc: usize| {
        let v = mem.apply(&Op::single(loc, Instruction::BufferRead)).unwrap();
        v.as_seq().unwrap().len()
    };
    assert_eq!(len_of(&mut mem, 0), 1, "capacity overridden to 1");
    assert_eq!(len_of(&mut mem, 1), 2, "capacity overridden to 2");
    assert_eq!(len_of(&mut mem, 2), 3, "beyond the vector: uniform ℓ = 3");
}

#[test]
fn unbounded_memory_allocation_matches_touch_pattern() {
    let spec = MemorySpec::unbounded(InstructionSet::ReadWrite);
    let mut mem = Memory::new(&spec);
    assert!(mem.is_empty());
    for loc in [5usize, 2, 11] {
        mem.apply(&Op::read(loc)).unwrap();
    }
    assert_eq!(mem.len(), 12, "grown to the largest touched index + 1");
    assert_eq!(mem.touched(), 12);
}

#[test]
fn cas_on_bot_initialised_word() {
    let spec =
        MemorySpec::bounded(InstructionSet::Cas, 1).with_initial(vec![Value::Bot]);
    let mut mem = Memory::new(&spec);
    let cas = |e: Value, n: Value| Instruction::CompareAndSwap { expected: e, new: n };
    assert_eq!(
        mem.apply(&Op::single(0, cas(Value::Bot, Value::int(4)))).unwrap(),
        Value::Bot,
        "winner sees ⊥"
    );
    assert_eq!(
        mem.apply(&Op::single(0, cas(Value::Bot, Value::int(9)))).unwrap(),
        Value::int(4),
        "loser sees the winner's input and installs nothing"
    );
}
