//! Determinism and replayability: the machine is a pure function of
//! (protocol, inputs, schedule), seeds reproduce runs exactly, and the
//! randomized transform is deterministic given its two seeds. This is what
//! makes every failure in this repository replayable from its seed.

use space_hierarchy::protocols::buffer::buffer_consensus;
use space_hierarchy::protocols::cas::CasConsensus;
use space_hierarchy::protocols::maxreg::MaxRegConsensus;
use space_hierarchy::protocols::swap::SwapConsensus;
use space_hierarchy::random::{run_randomized, RandomizedConfig};
use space_hierarchy::sim::{
    adversarial_then_solo, Machine, RandomScheduler, ScriptedScheduler,
};
use space_hierarchy::verify::checker::{explore, ExploreLimits, ExploreOutcome, Explorer};
use space_hierarchy::verify::strawmen::OneMaxRegister;

#[test]
fn seeded_runs_replay_exactly() {
    let protocol = MaxRegConsensus::new(5);
    let inputs = [4, 0, 2, 2, 1];
    for seed in 0..10 {
        let a = adversarial_then_solo(&protocol, &inputs, RandomScheduler::seeded(seed), 4_000, 1_000_000).unwrap();
        let b = adversarial_then_solo(&protocol, &inputs, RandomScheduler::seeded(seed), 4_000, 1_000_000).unwrap();
        assert_eq!(a, b, "seed {seed} must replay identically");
    }
}

#[test]
fn different_seeds_explore_different_interleavings() {
    let protocol = SwapConsensus::new(4);
    let inputs = [3, 0, 2, 2];
    let runs: Vec<u64> = (0..12)
        .map(|seed| {
            adversarial_then_solo(&protocol, &inputs, RandomScheduler::seeded(seed), 2_000, 10_000_000)
                .unwrap()
                .steps
        })
        .collect();
    let distinct: std::collections::BTreeSet<u64> = runs.iter().copied().collect();
    assert!(distinct.len() > 1, "step counts across seeds: {runs:?}");
}

#[test]
fn scripted_schedule_is_a_pure_function() {
    let protocol = buffer_consensus(3, 2);
    let inputs = [2, 0, 1];
    let script = vec![0, 1, 2, 2, 1, 0, 0, 1, 2, 1, 1, 0];
    let run = || {
        let mut machine = Machine::start(&protocol, &inputs).unwrap();
        machine
            .run(ScriptedScheduler::new(script.clone()), 1_000)
            .unwrap();
        machine
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "whole configurations match, not just reports");
}

#[test]
fn step_by_step_equals_batch_run() {
    let protocol = MaxRegConsensus::new(3);
    let inputs = [2, 0, 1];
    let script = [0usize, 1, 2, 0, 2, 1, 0, 0, 1];
    let mut batch = Machine::start(&protocol, &inputs).unwrap();
    batch
        .run(ScriptedScheduler::new(script.to_vec()), 100)
        .unwrap();
    let mut manual = Machine::start(&protocol, &inputs).unwrap();
    for &pid in &script {
        if manual.decision(pid).is_none() {
            manual.step(pid).unwrap();
        }
    }
    assert_eq!(batch, manual);
}

#[test]
fn randomized_transform_replays_per_config() {
    let protocol = MaxRegConsensus::new(4);
    let inputs = [3, 0, 2, 2];
    for seed in 0..6 {
        let a = run_randomized(&protocol, &inputs, RandomizedConfig::seeded(seed)).unwrap();
        let b = run_randomized(&protocol, &inputs, RandomizedConfig::seeded(seed)).unwrap();
        assert_eq!(a, b);
    }
}

#[test]
fn coin_seed_changes_run_but_schedule_seed_fixes_adversary() {
    let protocol = SwapConsensus::new(3);
    let inputs = [2, 0, 1];
    let base = RandomizedConfig::seeded(5);
    let mut other_coins = base;
    other_coins.coin_seed ^= 0xDEAD_BEEF;
    let a = run_randomized(&protocol, &inputs, base).unwrap();
    let b = run_randomized(&protocol, &inputs, other_coins).unwrap();
    // The oblivious schedule is identical; different coins usually change the
    // turn count. (Equality is possible but astronomically unlikely here; we
    // assert only the reports stay *valid* to avoid flakiness.)
    a.report.check(&inputs).unwrap();
    b.report.check(&inputs).unwrap();
}

#[test]
fn parallel_explorer_outcomes_are_bit_identical_across_worker_counts() {
    // The frontier explorer's parallel fan-out must be unobservable: the
    // whole `ExploreOutcome` — verdict, configuration counts, and the exact
    // counterexample schedule — is identical at 1, 2 and 8 workers, and
    // identical to the plain sequential `explore` entry point.
    //
    // A violating workload (Theorem 4.1's one-max-register strawman) pins the
    // counterexample schedule; a clean, solo-checked workload pins the
    // configuration count and completeness flag.
    let violating = ExploreLimits::default();
    let reference = explore(&OneMaxRegister::new(), &[0, 1], violating).unwrap();
    assert!(
        matches!(reference, ExploreOutcome::AgreementViolation { .. }),
        "{reference:?}"
    );
    for workers in [1, 2, 8] {
        let outcome = Explorer::new()
            .limits(violating)
            .workers(workers)
            .explore(&OneMaxRegister::new(), &[0, 1])
            .unwrap();
        assert_eq!(outcome, reference, "violation outcome at {workers} workers");
    }

    let clean = ExploreLimits {
        depth: 12,
        max_configs: 100_000,
        solo_check_budget: Some(12),
        memory_budget: None,
        checkpoint_every: None,
    };
    let reference = explore(&CasConsensus::new(3), &[0, 1, 2], clean).unwrap();
    assert!(
        matches!(reference, ExploreOutcome::Clean { complete: true, .. }),
        "{reference:?}"
    );
    for workers in [1, 2, 8] {
        let outcome = Explorer::new()
            .limits(clean)
            .workers(workers)
            .explore(&CasConsensus::new(3), &[0, 1, 2])
            .unwrap();
        assert_eq!(outcome, reference, "clean outcome at {workers} workers");
    }
}

#[test]
fn cloned_configurations_diverge_independently() {
    let protocol = buffer_consensus(3, 1);
    let inputs = [2, 1, 0];
    let mut trunk = Machine::start(&protocol, &inputs).unwrap();
    trunk.run(RandomScheduler::seeded(1), 25).unwrap();
    let snapshot = trunk.clone();
    let mut left = trunk.clone();
    let mut right = trunk.clone();
    left.run_solo(0, 1_000_000).unwrap();
    right.run_solo(1, 1_000_000).unwrap();
    // The trunk is untouched by either branch.
    assert_eq!(trunk, snapshot);
    // Both branches decided something valid (and, by agreement from a common
    // prefix, possibly different only if the trunk was still bivalent).
    for m in [&left, &right] {
        let decided: Vec<u64> = (0..3).filter_map(|p| m.decision(p)).collect();
        for d in decided {
            assert!(inputs.contains(&d));
        }
    }
}
