//! Obstruction-freedom: from every reachable configuration we sample, every
//! process decides in a solo run — the paper's progress condition (Section 2),
//! checked empirically for each protocol.

use space_hierarchy::model::Protocol;
use space_hierarchy::protocols::bitwise::increment_log_consensus;
use space_hierarchy::protocols::buffer::buffer_consensus;
use space_hierarchy::protocols::counter::{MultiplyCounterFamily, MultiplyFlavor};
use space_hierarchy::protocols::increment::IncrementFlavor;
use space_hierarchy::protocols::maxreg::MaxRegConsensus;
use space_hierarchy::protocols::racing::RacingConsensus;
use space_hierarchy::protocols::registers::register_consensus;
use space_hierarchy::protocols::swap::SwapConsensus;
use space_hierarchy::protocols::tracks::track_consensus;
use space_hierarchy::protocols::util::BitWrite;
use space_hierarchy::sim::{Machine, RandomScheduler};

/// Drives the system to assorted reachable configurations (random schedule
/// prefixes of several lengths and seeds) and asserts that every undecided
/// process decides solo from there, with decisions consistent with any
/// already-decided process.
fn solo_decides_everywhere<P: Protocol>(protocol: &P, inputs: &[u64], solo_budget: u64) {
    for seed in 0..4 {
        for prefix in [0u64, 7, 40, 200, 1_000] {
            let mut machine = Machine::start(protocol, inputs)
                .unwrap_or_else(|e| panic!("{}: {e}", protocol.name()));
            machine
                .run(RandomScheduler::seeded(seed), prefix)
                .unwrap_or_else(|e| panic!("{}: {e}", protocol.name()));
            let already: Vec<Option<u64>> =
                (0..machine.n()).map(|p| machine.decision(p)).collect();
            for pid in 0..machine.n() {
                if already[pid].is_some() {
                    continue;
                }
                let mut probe = machine.clone();
                let decided = probe
                    .run_solo(pid, solo_budget)
                    .unwrap_or_else(|e| panic!("{}: {e}", protocol.name()));
                let v = decided.unwrap_or_else(|| {
                    panic!(
                        "{}: p{pid} failed to decide solo after prefix {prefix} (seed {seed})",
                        protocol.name()
                    )
                });
                assert!(inputs.contains(&v), "{}: validity in solo", protocol.name());
                for (q, w) in already.iter().enumerate() {
                    if let Some(w) = w {
                        assert_eq!(v, *w, "{}: solo agrees with decided p{q}", protocol.name());
                    }
                }
            }
        }
    }
}

#[test]
fn maxreg_obstruction_free() {
    solo_decides_everywhere(&MaxRegConsensus::new(4), &[3, 0, 2, 2], 10_000);
}

#[test]
fn swap_obstruction_free() {
    solo_decides_everywhere(&SwapConsensus::new(4), &[3, 0, 2, 2], 100_000);
}

#[test]
fn multiply_counter_obstruction_free() {
    let protocol = RacingConsensus::new(
        MultiplyCounterFamily::new(4, MultiplyFlavor::ReadMultiply),
        4,
    );
    solo_decides_everywhere(&protocol, &[3, 0, 2, 2], 100_000);
}

#[test]
fn buffers_obstruction_free() {
    solo_decides_everywhere(&buffer_consensus(4, 2), &[3, 0, 2, 2], 1_000_000);
}

#[test]
fn registers_obstruction_free() {
    solo_decides_everywhere(&register_consensus(4), &[3, 0, 2, 2], 1_000_000);
}

#[test]
fn tracks_obstruction_free() {
    solo_decides_everywhere(&track_consensus(3, BitWrite::Write1), &[2, 0, 1], 1_000_000);
}

#[test]
fn increment_bit_by_bit_obstruction_free() {
    let protocol = increment_log_consensus(4, IncrementFlavor::Increment);
    solo_decides_everywhere(&protocol, &[3, 0, 2, 2], 1_000_000);
}

#[test]
fn lemma_8_7_scan_bound_across_n() {
    // The paper's only explicit solo step bound: ≤ 3n−2 scans for Algorithm 1.
    for n in [2usize, 4, 8, 16, 32] {
        let protocol = SwapConsensus::new(n);
        let inputs: Vec<u64> = (0..n as u64).collect();
        let mut machine = Machine::start(&protocol, &inputs).unwrap();
        machine.run_solo(0, 50_000_000).unwrap().expect("decides");
        // Solo double collects stabilize in exactly 2 collects of n−1 reads;
        // with ≤ 3n−2 scans and ≤ 3(n−1) swaps:
        let bound = (3 * n as u64 - 2) * 2 * (n as u64 - 1) + 3 * (n as u64 - 1);
        assert!(
            machine.steps() <= bound,
            "n={n}: {} steps exceeds Lemma 8.7's {bound}",
            machine.steps()
        );
    }
}
