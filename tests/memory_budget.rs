//! Tier-1 budget-stress suite for the memory-bounded frontier.
//!
//! The spillable frontier's contract is absolute: `(ExploreOutcome,
//! ExploreStats)` are bit-identical to the unbounded run at any
//! `memory_budget` and any worker count — the budget may only move bytes
//! between RAM and the spill arena, never change what is explored. Three
//! angles on that contract:
//!
//! - the two densest Table-1 rows (`tas-reset`, `write01`), re-explored with
//!   the budget pinned to ~10% of the unbounded run's observed resident
//!   peak, at 1 and 4 workers;
//! - every registry row under a **zero** budget — spilling on every layer,
//!   including the root — at 1, 4 and 8 workers;
//! - the legacy barrier engine through the same store, budgeted vs not.
//!
//! `bytes_spilled` must be *nonzero* on every budgeted run (the stress is
//! real) and zero on every unbounded one (spilling is strictly opt-in).
//!
//! The budget is also a *true cap*: every budgeted run's tracked resident
//! peak — frontier blocks, the seen set (hot table, Bloom front and run
//! index), intern tables, the claim table — must stay within the budget
//! plus [`SLACK`], a fixed allowance for the structures that cannot shrink
//! below a floor (minimum hot table, in-flight double-buffered spill
//! writes, one streamed-back run block, bounded merge buffers).

use space_hierarchy::model::Protocol;
use space_hierarchy::protocols::bitwise::{tas_reset_consensus, write01_consensus};
use space_hierarchy::protocols::registry::{self, RowSpec, RowVisitor};
use space_hierarchy::protocols::stress::value_diverse_consensus;
use space_hierarchy::sim::SimError;
use space_hierarchy::verify::checker::{ExploreLimits, ExploreOutcome, ExploreStats, Explorer};
use space_hierarchy::verify::legacy::legacy_explore_stats;

/// Fixed allowance above the budget for floor-sized structures: minimum
/// hot-table/Bloom allocations, the two in-flight double-buffered spill
/// writes, one streamed-back block per store and bounded merge buffers.
const SLACK: usize = 4 << 20;

/// The true-cap assertion shared by every budgeted run in this suite.
fn assert_within_cap(name: &str, stats: &ExploreStats, budget: usize, workers: usize) {
    assert!(
        stats.peak_resident_bytes <= budget + SLACK,
        "{name}: budget {budget} at {workers} workers peaked at {} resident bytes \
         (> budget + {} slack)",
        stats.peak_resident_bytes,
        SLACK
    );
}

fn explore_at<P>(
    protocol: &P,
    inputs: &[u64],
    limits: ExploreLimits,
    workers: usize,
) -> (ExploreOutcome, ExploreStats)
where
    P: Protocol,
    P::Proc: Send + Sync,
{
    Explorer::new()
        .workers(workers)
        .limits(limits)
        .explore_stats(protocol, inputs)
        .expect("workload explores without model errors")
}

/// Unbounded baseline, then budgeted reruns: outcome and semantic stats must
/// compare equal (`ExploreStats` equality excludes the spill telemetry), the
/// budgeted runs must actually spill, and the unbounded one must not.
fn assert_budget_invariance<P>(
    protocol: &P,
    inputs: &[u64],
    limits: ExploreLimits,
    budget: impl Fn(&ExploreStats) -> usize,
    workers: &[usize],
) where
    P: Protocol,
    P::Proc: Send + Sync,
{
    let name = protocol.name();
    let unbounded = explore_at(protocol, inputs, limits, 1);
    assert_eq!(unbounded.1.bytes_spilled, 0, "{name}: unbounded run spilled");
    assert!(
        unbounded.1.peak_resident_bytes > 0,
        "{name}: peak telemetry missing"
    );
    let cap = budget(&unbounded.1);
    let budgeted_limits = ExploreLimits {
        memory_budget: Some(cap),
        ..limits
    };
    for &w in workers {
        let spilled = explore_at(protocol, inputs, budgeted_limits, w);
        assert_eq!(
            spilled, unbounded,
            "{name}: budget {:?} at {w} workers diverged",
            budgeted_limits.memory_budget
        );
        assert!(
            spilled.1.bytes_spilled > 0,
            "{name}: budget {:?} at {w} workers never spilled",
            budgeted_limits.memory_budget
        );
        assert_within_cap(&name, &spilled.1, cap, w);
    }
}

#[test]
fn densest_rows_at_ten_percent_budget_match_unbounded() {
    // The two Theorem 9.4 rows are the widest frontiers in the registry —
    // the workloads the disk-spilling frontier exists for.
    let limits = ExploreLimits {
        depth: 9,
        max_configs: 200_000,
        solo_check_budget: None,
        memory_budget: None,
        checkpoint_every: None,
    };
    assert_budget_invariance(
        &tas_reset_consensus(3),
        &[0, 1, 2],
        limits,
        |stats| (stats.peak_resident_bytes / 10).max(1),
        &[1, 4],
    );
    assert_budget_invariance(
        &write01_consensus(3),
        &[0, 1, 2],
        limits,
        |stats| (stats.peak_resident_bytes / 10).max(1),
        &[1, 4],
    );
}

/// Visits one registry row: zero budget (spill on every layer, root
/// included) at 1, 4 and 8 workers against the unbounded baseline.
struct SpillEveryLayer;

impl RowVisitor for SpillEveryLayer {
    type Output = ();

    fn visit<P>(&mut self, spec: &RowSpec, protocol: P)
    where
        P: Protocol,
        P::Proc: Send + Sync,
    {
        let inputs: Vec<u64> = (0..protocol.n() as u64)
            .map(|i| i % protocol.domain())
            .collect();
        let limits = ExploreLimits {
            // Shallow horizon: 20 rows × 4 runs each must stay fast in debug
            // builds; the dense-row test above supplies the depth stress.
            depth: 5,
            max_configs: 20_000,
            solo_check_budget: None,
            memory_budget: None,
            checkpoint_every: None,
        };
        let _ = spec;
        assert_budget_invariance(&protocol, &inputs, limits, |_| 0, &[1, 4, 8]);
    }
}

#[test]
fn every_registry_row_is_budget_invariant_with_zero_budget() {
    for row in registry::all_rows() {
        registry::visit_row(row.id, 3, &mut SpillEveryLayer).expect("registered row");
    }
}

#[test]
fn value_diverse_interning_trips_the_budget_instead_of_overrunning() {
    // Regression: intern tables cannot spill, so a protocol whose states
    // never collide and never compress (`value-diverse`, not a registry
    // row) grows resident bytes past any budget. The engine used to keep
    // exploring anyway; it must instead stop with a typed budget error as
    // soon as resident bytes exceed budget + SLACK.
    let limits = ExploreLimits {
        depth: 13,
        max_configs: 50_000,
        solo_check_budget: None,
        memory_budget: None,
        checkpoint_every: None,
    };
    let protocol = value_diverse_consensus(2);
    let inputs = [0u64, 0];
    // Unbudgeted, the row explores cleanly (and confirms the stress is
    // real: the intern tables alone dwarf the budget used below).
    let (outcome, stats) = explore_at(&protocol, &inputs, limits, 1);
    assert!(matches!(outcome, ExploreOutcome::Clean { .. }));
    let budget = 1 << 20;
    assert!(
        stats.intern_resident_bytes > budget + SLACK,
        "stress row too small to overrun: {} interned bytes",
        stats.intern_resident_bytes
    );
    let budgeted = ExploreLimits {
        memory_budget: Some(budget),
        ..limits
    };
    for workers in [1, 4] {
        let err = Explorer::new()
            .workers(workers)
            .limits(budgeted)
            .explore_stats(&protocol, &inputs)
            .expect_err("interning must trip the budget");
        match err {
            SimError::Budget { needed, budget: b } => {
                assert_eq!(b, budget);
                assert!(needed > budget + SLACK, "error reports the overrun");
            }
            other => panic!("expected SimError::Budget, got {other:?}"),
        }
    }
}

#[test]
fn legacy_engine_is_budget_invariant_too() {
    let limits = ExploreLimits {
        depth: 8,
        max_configs: 100_000,
        solo_check_budget: None,
        memory_budget: None,
        checkpoint_every: None,
    };
    let protocol = tas_reset_consensus(3);
    let inputs = [0u64, 1, 2];
    let unbounded = legacy_explore_stats(&protocol, &inputs, limits, 1, false).unwrap();
    assert_eq!(unbounded.1.bytes_spilled, 0);
    let cap = (unbounded.1.peak_resident_bytes / 10).max(1);
    let budgeted = ExploreLimits {
        memory_budget: Some(cap),
        ..limits
    };
    for workers in [1, 4] {
        let spilled = legacy_explore_stats(&protocol, &inputs, budgeted, workers, false).unwrap();
        assert_eq!(spilled, unbounded, "legacy at {workers} workers diverged");
        assert!(
            spilled.1.bytes_spilled > 0,
            "legacy at {workers} workers never spilled"
        );
        assert_within_cap("legacy tas-reset", &spilled.1, cap, workers);
    }
    // And the budgeted legacy engine still agrees with the budgeted packed
    // engine — the cross-engine bar the conformance suite holds unbudgeted
    // runs to extends to spilling ones.
    let packed = explore_at(&protocol, &inputs, budgeted, 4);
    assert_eq!(packed, unbounded, "packed vs legacy under budget");
}
