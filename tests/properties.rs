//! Property-based tests across the workspace: arbitrary schedules, arbitrary
//! inputs, reference-model semantics.

use proptest::prelude::*;
use space_hierarchy::model::{
    CellState, Instruction, InstructionSet, Memory, MemorySpec, Op, Value,
};
use space_hierarchy::protocols::buffer::{buffer_consensus, reconstruct_history, Record};
use space_hierarchy::protocols::cas::CasConsensus;
use space_hierarchy::protocols::intro::FaaTasConsensus;
use space_hierarchy::protocols::maxreg::{MaxRegConsensus, RoundValue};
use space_hierarchy::protocols::swap::SwapConsensus;
use space_hierarchy::sim::{adversarial_then_solo, ScriptedScheduler};
use space_hierarchy::verify::packing::{
    find_k_packing, fully_packed_locations, is_k_packing, repack,
};

// ---------------------------------------------------------------------------
// Consensus under arbitrary scripted schedules
// ---------------------------------------------------------------------------

/// Runs `protocol` with an arbitrary pid script and checks the consensus
/// properties; used by the per-protocol proptests below.
fn scripted_consensus_holds<P: space_hierarchy::model::Protocol>(
    protocol: &P,
    inputs: &[u64],
    script: Vec<usize>,
) -> Result<(), TestCaseError> {
    let script: Vec<usize> = script.into_iter().map(|p| p % protocol.n()).collect();
    let len = script.len() as u64;
    let report = adversarial_then_solo(
        protocol,
        inputs,
        ScriptedScheduler::new(script),
        len,
        50_000_000,
    )
    .map_err(|e| TestCaseError::fail(e.to_string()))?;
    report
        .check(inputs)
        .map_err(|v| TestCaseError::fail(v.to_string()))?;
    prop_assert!(report.unanimous().is_some());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cas_any_schedule(script in proptest::collection::vec(0usize..4, 0..40),
                        inputs in proptest::collection::vec(0u64..4, 4)) {
        scripted_consensus_holds(&CasConsensus::new(4), &inputs, script)?;
    }

    #[test]
    fn faa_tas_any_schedule(script in proptest::collection::vec(0usize..4, 0..60),
                            inputs in proptest::collection::vec(0u64..2, 4)) {
        scripted_consensus_holds(&FaaTasConsensus::new(4), &inputs, script)?;
    }

    #[test]
    fn maxreg_any_schedule(script in proptest::collection::vec(0usize..3, 0..120),
                           inputs in proptest::collection::vec(0u64..3, 3)) {
        scripted_consensus_holds(&MaxRegConsensus::new(3), &inputs, script)?;
    }

    #[test]
    fn swap_any_schedule(script in proptest::collection::vec(0usize..3, 0..120),
                         inputs in proptest::collection::vec(0u64..3, 3)) {
        scripted_consensus_holds(&SwapConsensus::new(3), &inputs, script)?;
    }

    #[test]
    fn buffers_any_schedule(script in proptest::collection::vec(0usize..3, 0..100),
                            inputs in proptest::collection::vec(0u64..3, 3)) {
        scripted_consensus_holds(&buffer_consensus(3, 2), &inputs, script)?;
    }
}

// ---------------------------------------------------------------------------
// Cell semantics against reference models
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn buffer_cell_matches_naive_model(cap in 1usize..6,
                                       writes in proptest::collection::vec(any::<i64>(), 0..30)) {
        let mut cell = CellState::buffer(cap);
        let mut naive: Vec<i64> = Vec::new();
        for &w in &writes {
            cell.apply(&Instruction::BufferWrite(Value::int(w))).unwrap();
            naive.push(w);
        }
        let got = cell.apply(&Instruction::BufferRead).unwrap();
        // Reference: last `cap` writes, ⊥-padded on the left.
        let tail: Vec<Value> = naive.iter().rev().take(cap).rev().map(|&w| Value::int(w)).collect();
        let mut expect = vec![Value::Bot; cap - tail.len()];
        expect.extend(tail);
        prop_assert_eq!(got, Value::Seq(expect));
    }

    #[test]
    fn max_register_holds_running_maximum(writes in proptest::collection::vec(any::<i64>(), 1..30)) {
        let mut cell = CellState::word(Value::int(i64::MIN));
        for &w in &writes {
            cell.apply(&Instruction::WriteMax(Value::int(w))).unwrap();
        }
        let got = cell.apply(&Instruction::ReadMax).unwrap();
        prop_assert_eq!(got, Value::int(*writes.iter().max().unwrap()));
    }

    #[test]
    fn fetch_and_add_is_a_running_sum(adds in proptest::collection::vec(-1000i64..1000, 1..30)) {
        let spec = MemorySpec::bounded(InstructionSet::FetchAndAdd, 1);
        let mut mem = Memory::new(&spec);
        let mut sum = 0i64;
        for &a in &adds {
            let got = mem.apply(&Op::single(0, Instruction::fetch_and_add(a))).unwrap();
            prop_assert_eq!(got, Value::int(sum));
            sum += a;
        }
    }

    #[test]
    fn multi_assign_equals_individual_writes(values in proptest::collection::vec(any::<i64>(), 1..6)) {
        // On distinct locations with no interleaving, one multiple assignment
        // and a sequence of writes produce identical memories.
        let spec = MemorySpec::bounded(InstructionSet::ReadWrite, values.len());
        let mut a = Memory::new(&spec);
        let mut b = Memory::new(&spec);
        a.apply(&Op::multi_assign(
            values.iter().enumerate().map(|(i, &v)| (i, Value::int(v))),
        ))
        .unwrap();
        for (i, &v) in values.iter().enumerate() {
            b.apply(&Op::single(i, Instruction::write(v))).unwrap();
        }
        for i in 0..values.len() {
            prop_assert_eq!(a.cell(i), b.cell(i));
        }
    }
}

// ---------------------------------------------------------------------------
// Encodings
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn maxreg_encoding_respects_lexicographic_order(
        a_round in 0u64..12, a_val in 0u64..10,
        b_round in 0u64..12, b_val in 0u64..10,
    ) {
        let y = 11; // prime > 10
        let a = RoundValue { round: a_round, value: a_val };
        let b = RoundValue { round: b_round, value: b_val };
        prop_assert_eq!(a.cmp(&b), a.encode(y).cmp(&b.encode(y)));
        prop_assert_eq!(RoundValue::decode(&a.encode(y), y), a);
    }

    #[test]
    fn history_reconstruction_recovers_sequential_appends(
        ell in 1usize..5,
        count in 0usize..12,
    ) {
        // Sequential appends: entry i carries the exact prefix history.
        let records: Vec<Value> = (0..count as u64)
            .map(|i| Record { writer: i % 3, seq: i, payload: Value::int(i) }.encode())
            .collect();
        let visible = count.min(ell);
        let mut entries: Vec<Value> = vec![Value::Bot; ell - visible];
        for i in (count - visible)..count {
            entries.push(Value::pair(
                Value::seq(records[..i].iter().cloned()),
                records[i].clone(),
            ));
        }
        prop_assert_eq!(reconstruct_history(&entries), records);
    }
}

// ---------------------------------------------------------------------------
// k-packings (Lemma 7.1)
// ---------------------------------------------------------------------------

fn covers_strategy() -> impl Strategy<Value = Vec<Vec<usize>>> {
    proptest::collection::vec(
        proptest::collection::btree_set(0usize..5, 1..4).prop_map(|s| s.into_iter().collect()),
        1..8,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn found_packings_are_valid(covers in covers_strategy(), k in 1usize..4) {
        if let Some(p) = find_k_packing(&covers, k) {
            prop_assert!(is_k_packing(&covers, &p, k));
        }
    }

    #[test]
    fn packing_feasibility_is_monotone_in_k(covers in covers_strategy(), k in 1usize..4) {
        if find_k_packing(&covers, k).is_some() {
            prop_assert!(find_k_packing(&covers, k + 1).is_some());
        }
    }

    #[test]
    fn repack_preserves_validity_and_shifts_one(covers in covers_strategy(), k in 2usize..4) {
        // Build two packings by permuting exploration order; when they pack a
        // location differently, Lemma 7.1's repair must hold.
        let Some(g) = find_k_packing(&covers, k) else { return Ok(()); };
        // Second packing: restrict one process to a different covered location
        // when possible.
        let mut covers2 = covers.clone();
        for c in covers2.iter_mut() {
            c.reverse();
        }
        let Some(h) = find_k_packing(&covers2, k) else { return Ok(()); };
        let count = |pk: &[usize], r: usize| pk.iter().filter(|&&x| x == r).count();
        let locs: std::collections::BTreeSet<usize> = g.iter().chain(h.iter()).copied().collect();
        for &r1 in &locs {
            if count(&g, r1) > count(&h, r1) {
                let out = repack(&g, &h, r1);
                prop_assert!(is_k_packing(&covers, &out.packing, k));
                prop_assert_eq!(count(&out.packing, r1), count(&g, r1) - 1);
                let rt = *out.path.last().unwrap();
                prop_assert_eq!(count(&out.packing, rt), count(&g, rt) + 1);
            }
        }
    }

    #[test]
    fn fully_packed_locations_are_packed_to_k_in_every_packing(
        covers in covers_strategy(), k in 1usize..4,
    ) {
        if let Some(fully) = fully_packed_locations(&covers, k) {
            let p = find_k_packing(&covers, k).expect("feasible");
            for r in fully {
                prop_assert_eq!(p.iter().filter(|&&x| x == r).count(), k);
            }
        }
    }
}
