//! Smoke test: every `examples/` binary builds and runs to success.
//!
//! Each example is a documented entry point to a different layer of the
//! workspace (simulator, threads, buffers, adversaries, packings, the
//! randomized transform); a broken one means a broken public API, so they
//! are exercised — not just compiled — on every `cargo test`.

use std::path::Path;
use std::process::Command;

/// Discovered from `examples/*.rs` rather than hard-coded, so a new example
/// is covered the moment it lands and a renamed one cannot silently drop out.
fn discover_examples(manifest_dir: &Path) -> Vec<String> {
    let mut names: Vec<String> = std::fs::read_dir(manifest_dir.join("examples"))
        .expect("examples/ exists")
        .filter_map(|entry| {
            let path = entry.expect("readable dir entry").path();
            // Both cargo-discovered layouts: examples/foo.rs and
            // examples/foo/main.rs.
            let is_example = path.extension().is_some_and(|e| e == "rs")
                || (path.is_dir() && path.join("main.rs").is_file());
            is_example.then(|| path.file_stem().unwrap().to_string_lossy().into_owned())
        })
        .collect();
    names.sort();
    names
}

#[test]
fn all_examples_run_to_success() {
    // `cargo test` exports CARGO; invoking the same cargo on the same
    // workspace reuses the target dir, so each example costs one build of
    // itself plus its (already-compiled) dependencies.
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    let manifest_dir = Path::new(env!("CARGO_MANIFEST_DIR"));
    let examples = discover_examples(manifest_dir);
    assert!(
        examples.len() >= 6,
        "expected the six seed examples at minimum, found {examples:?}"
    );
    for example in examples {
        let output = Command::new(&cargo)
            .current_dir(manifest_dir)
            .args(["run", "--quiet", "--example"])
            .arg(&example)
            .output()
            .unwrap_or_else(|e| panic!("failed to spawn cargo for example {example}: {e}"));
        assert!(
            output.status.success(),
            "example {example} failed with {}:\n--- stdout ---\n{}\n--- stderr ---\n{}",
            output.status,
            String::from_utf8_lossy(&output.stdout),
            String::from_utf8_lossy(&output.stderr),
        );
        assert!(
            !output.stdout.is_empty(),
            "example {example} printed nothing; examples must narrate what they show"
        );
    }
}
