//! Real-thread integration: the same protocol state machines on OS threads,
//! plus the native concurrent objects under load.

use space_hierarchy::model::Protocol;
use space_hierarchy::protocols::buffer::buffer_consensus;
use space_hierarchy::protocols::cas::CasConsensus;
use space_hierarchy::protocols::counter::{AddCounterFamily, AddFlavor};
use space_hierarchy::protocols::hetero::hetero_consensus;
use space_hierarchy::protocols::intro::DecMulConsensus;
use space_hierarchy::protocols::maxreg::MaxRegConsensus;
use space_hierarchy::protocols::racing::RacingConsensus;
use space_hierarchy::protocols::swap::SwapConsensus;
use space_hierarchy::sync::objects::{racing_consensus_native, HistoryObject, MCounter, MaxRegister};
use space_hierarchy::sync::run_threaded;

fn threaded_checked<P>(protocol: P, inputs: &[u64], space: Option<usize>)
where
    P: Protocol,
    P::Proc: Send,
{
    let outcome = run_threaded(&protocol, inputs).unwrap();
    outcome
        .report
        .check(inputs)
        .unwrap_or_else(|v| panic!("{}: {v}", protocol.name()));
    assert!(outcome.report.unanimous().is_some(), "{}", protocol.name());
    if let Some(s) = space {
        assert_eq!(outcome.report.locations_touched, s, "{}", protocol.name());
    }
}

#[test]
fn threads_cas_eight_ways() {
    threaded_checked(CasConsensus::new(8), &[7, 1, 1, 3, 0, 2, 5, 1], Some(1));
}

#[test]
fn threads_dec_mul() {
    threaded_checked(DecMulConsensus::new(6), &[0, 1, 1, 0, 1, 0], Some(1));
}

#[test]
fn threads_add_counter_racing() {
    let n = 4;
    threaded_checked(
        RacingConsensus::new(AddCounterFamily::new(n, n, AddFlavor::ReadAdd), n),
        &[3, 0, 2, 2],
        Some(1),
    );
}

#[test]
fn threads_max_registers() {
    threaded_checked(MaxRegConsensus::new(6), &[5, 0, 3, 3, 1, 2], Some(2));
}

#[test]
fn threads_swap() {
    threaded_checked(SwapConsensus::new(5), &[4, 0, 2, 2, 1], Some(4));
}

#[test]
fn threads_buffers_and_hetero() {
    threaded_checked(buffer_consensus(6, 3), &[5, 0, 3, 3, 1, 2], Some(2));
    threaded_checked(hetero_consensus(5, vec![3, 2]), &[4, 0, 2, 2, 4], Some(2));
}

#[test]
fn native_objects_under_contention() {
    // Max register: concurrent monotone writes.
    let reg = MaxRegister::default();
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let reg = &reg;
            s.spawn(move || {
                for i in 0..500 {
                    reg.write_max((t * 10_000 + i).into());
                }
            });
        }
    });
    assert_eq!(reg.read_max(), 30_499u64.into());

    // History object: nothing is lost, per-writer order preserved.
    let h: HistoryObject<u64> = HistoryObject::new(3);
    std::thread::scope(|s| {
        for w in 0..3usize {
            let h = &h;
            s.spawn(move || {
                for i in 0..200u64 {
                    h.append(w, i);
                }
            });
        }
    });
    assert_eq!(h.get_history().len(), 600);

    // Counter: all increments counted, scan linearizes.
    let c = MCounter::new(3);
    std::thread::scope(|s| {
        for t in 0..6usize {
            let c = &c;
            s.spawn(move || {
                for _ in 0..500 {
                    c.increment(t % 3);
                }
            });
        }
    });
    assert_eq!(c.scan(), vec![1000, 1000, 1000]);
}

#[test]
fn native_racing_consensus_many_rounds() {
    for round in 0..8u64 {
        let inputs = [round % 3, 2, 0, (round + 1) % 3, 1, 2];
        let v = racing_consensus_native(3, &inputs);
        assert!(inputs.contains(&v));
    }
}
