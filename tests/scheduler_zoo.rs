//! One integration test per scheduler in the zoo: under every adversary,
//! `run_consensus` on the Theorem 4.2 two-max-register protocol decides for
//! all processes, satisfies agreement and validity, and touches exactly the
//! two locations the theorem promises.

use space_hierarchy::protocols::maxreg::MaxRegConsensus;
use space_hierarchy::sim::{
    run_consensus, ConsensusReport, ObstructionScheduler, RandomScheduler, RoundRobinScheduler,
    Scheduler, ScriptedScheduler, SoloScheduler,
};

const INPUTS: [u64; 4] = [2, 0, 3, 2];

fn run_and_check(scheduler: impl Scheduler) -> ConsensusReport {
    let protocol = MaxRegConsensus::new(4);
    let report = run_consensus(&protocol, &INPUTS, scheduler, 100_000)
        .expect("protocol stays inside the model");
    report.check(&INPUTS).expect("agreement and validity hold");
    assert!(
        report.decisions.iter().all(|d| d.is_some()),
        "every process decides: {:?}",
        report.decisions
    );
    assert!(report.unanimous().is_some(), "decisions are unanimous");
    assert_eq!(
        report.locations_touched, 2,
        "Theorem 4.2: two max-registers suffice"
    );
    report
}

#[test]
fn solo_scheduler_decides() {
    // The adversarial prefix runs only process 0; obstruction-freedom makes
    // it decide solo, and the harness finishes the rest.
    let report = run_and_check(SoloScheduler::new(0));
    assert_eq!(
        report.unanimous(),
        Some(INPUTS[0]),
        "a solo leader imposes its own input"
    );
}

#[test]
fn round_robin_scheduler_decides() {
    run_and_check(RoundRobinScheduler::new());
}

#[test]
fn random_scheduler_decides() {
    run_and_check(RandomScheduler::seeded(42));
}

#[test]
fn random_scheduler_decides_across_seeds() {
    for seed in 0..32 {
        run_and_check(RandomScheduler::seeded(seed));
    }
}

#[test]
fn scripted_scheduler_decides() {
    // An explicit interleaving that bounces between all four processes before
    // the script runs out and the solo phase completes the run.
    let script: Vec<usize> = (0..64).map(|i| [0, 2, 1, 3, 3, 1][i % 6]).collect();
    run_and_check(ScriptedScheduler::new(script));
}

#[test]
fn obstruction_scheduler_decides() {
    run_and_check(ObstructionScheduler::seeded(7, 5));
}

#[test]
fn all_schedulers_agree_on_checked_reports() {
    // Cross-scheduler sanity: every adversary yields a *valid* decision, but
    // not necessarily the same one — agreement is per-run, not cross-run.
    let reports = [
        run_and_check(SoloScheduler::new(1)),
        run_and_check(RoundRobinScheduler::new()),
        run_and_check(RandomScheduler::seeded(3)),
        run_and_check(ScriptedScheduler::new(vec![3, 2, 1, 0])),
        run_and_check(ObstructionScheduler::seeded(11, 3)),
    ];
    for report in &reports {
        assert!(INPUTS.contains(&report.unanimous().expect("unanimous")));
    }
}
