//! End-to-end lower-bound artifacts: adversaries, exhaustive checking, the
//! block-write observation, and the Figure 1 schedule.

use space_hierarchy::model::{Instruction, InstructionSet, Memory, MemorySpec, Op, Value};
use space_hierarchy::protocols::buffer::buffer_consensus;
use space_hierarchy::protocols::tracks::track_consensus;
use space_hierarchy::protocols::util::BitWrite;
use space_hierarchy::sim::{Machine, ScriptedScheduler};
use space_hierarchy::verify::adversary::{
    fetch_inc_adversary, max_register_interleave, tas_escalation,
};
use space_hierarchy::verify::checker::{bivalent, can_decide, explore, ExploreLimits, ExploreOutcome};
use space_hierarchy::verify::strawmen::{OneFetchIncWord, OneMaxRegister, OneRegister};

#[test]
fn theorem_4_1_and_5_1_adversaries_win() {
    assert!(max_register_interleave(&OneMaxRegister::new())
        .unwrap()
        .violated());
    assert!(fetch_inc_adversary(&OneFetchIncWord::new()).unwrap().violated());
}

#[test]
fn exhaustive_checker_agrees_with_the_adversaries() {
    for out in [
        explore(&OneMaxRegister::new(), &[0, 1], ExploreLimits::default()).unwrap(),
        explore(&OneRegister::new(2), &[0, 1], ExploreLimits::default()).unwrap(),
    ] {
        assert!(
            matches!(out, ExploreOutcome::AgreementViolation { .. }),
            "{out:?}"
        );
    }
}

#[test]
fn block_write_erases_buffer_history() {
    // The key observation of Section 6.2: after ℓ buffer-writes (a block
    // write by ℓ covering processes), an ℓ-buffer-read is independent of
    // everything before the block — which is what lets the adversary hide
    // the decided value from the other processes.
    let ell = 3;
    let spec = MemorySpec::bounded(InstructionSet::Buffer(ell), 1);
    let mut with_past = Memory::new(&spec);
    let mut without_past = Memory::new(&spec);
    // Divergent histories...
    for i in 0..10 {
        with_past
            .apply(&Op::single(0, Instruction::BufferWrite(Value::int(i))))
            .unwrap();
    }
    // ...then the same block write of ℓ values to both.
    for i in 100..100 + ell as i64 {
        for mem in [&mut with_past, &mut without_past] {
            mem.apply(&Op::single(0, Instruction::BufferWrite(Value::int(i))))
                .unwrap();
        }
    }
    assert_eq!(
        with_past.apply(&Op::single(0, Instruction::BufferRead)).unwrap(),
        without_past.apply(&Op::single(0, Instruction::BufferRead)).unwrap(),
        "reads after a full block write cannot distinguish the pasts"
    );
}

#[test]
fn figure_1_schedule_on_the_real_protocol() {
    // Figure 1's overlap: ℓ processes all perform the get-history read of
    // their first append before any performs its write. With ℓ = n = 3 on a
    // single 3-buffer, the first counter increment of each process is exactly
    // an append. Scripted: everyone reads (1 step each), then everyone
    // writes; the next scan must still count every increment.
    let n = 3;
    let protocol = buffer_consensus(n, n);
    let inputs = [2, 0, 1];
    // Each append = 1 buffer-read + 1 buffer-write. Schedule all reads, then
    // all writes, then let p0 finish solo (handled by the harness).
    let script = vec![0, 1, 2, 0, 1, 2];
    let report = space_hierarchy::sim::adversarial_then_solo(
        &protocol,
        &inputs,
        ScriptedScheduler::new(script),
        6,
        10_000_000,
    )
    .unwrap();
    report.check(&inputs).unwrap();
    assert_eq!(report.locations_touched, 1, "single ℓ-buffer");
}

#[test]
fn escalation_report_grows_with_target() {
    let protocol = track_consensus(3, BitWrite::Write1);
    let small = tas_escalation(&protocol, &[0, 1, 2], 6, 4_000).unwrap();
    let large = tas_escalation(&protocol, &[0, 1, 2], 14, 8_000).unwrap();
    assert!(small.locations_touched >= 6);
    assert!(large.locations_touched >= 14);
    assert!(large.locations_touched > small.locations_touched);
    assert!(small.still_bivalent && large.still_bivalent);
}

#[test]
fn valency_probes_match_intuition_on_tracks() {
    let protocol = track_consensus(2, BitWrite::Write1);
    let machine = Machine::start(&protocol, &[0, 1]).unwrap();
    assert!(bivalent(&machine, 30).unwrap(), "fresh config is bivalent");
    // After p0 runs far ahead solo, 0 is decided and 1 is unreachable
    // quickly.
    let mut ahead = machine.clone();
    ahead.run_solo(0, 1_000).unwrap();
    assert!(can_decide(&ahead, 0, 4).unwrap());
}
