//! Kill-at-every-checkpoint matrix: resuming from **any** snapshot a run
//! ever wrote reproduces the uninterrupted result bit for bit.
//!
//! The two densest Table-1 rows (`tas-reset`, `write01`) run once with a
//! short checkpoint cadence and every snapshot retained; each retained
//! snapshot then stands in for "the run was killed right here", and is
//! resumed at {1, 4} workers × {unbounded, ~10% budget}. Every resumed
//! `(ExploreOutcome, ExploreStats)` must equal the uninterrupted baseline —
//! checkpoints are taken at committer admission boundaries, so each one is
//! a prefix of the deterministic reference order, and the continuation is
//! the identical schedule regardless of worker count or budget. The
//! checkpointed run itself must match the baseline too: snapshotting may
//! never perturb what is explored.

use space_hierarchy::model::Protocol;
use space_hierarchy::protocols::bitwise::{tas_reset_consensus, write01_consensus};
use space_hierarchy::verify::checker::{ExploreLimits, ExploreOutcome, ExploreStats, Explorer};
use space_hierarchy::verify::snapshot::Snapshot;
use std::path::PathBuf;

fn matrix_limits() -> ExploreLimits {
    ExploreLimits {
        depth: 7,
        max_configs: 200_000,
        solo_check_budget: None,
        memory_budget: None,
        checkpoint_every: None,
    }
}

/// A unique checkpoint path per row (tests in one binary may run
/// concurrently; pids alone would collide).
fn checkpoint_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("cbh-resume-matrix-{}-{tag}.ck", std::process::id()))
}

fn run_matrix<P>(protocol: &P, inputs: &[u64])
where
    P: Protocol,
    P::Proc: Send + Sync,
{
    let name = protocol.name();
    let limits = matrix_limits();
    let baseline: (ExploreOutcome, ExploreStats) = Explorer::new()
        .limits(limits)
        .explore_stats(protocol, inputs)
        .expect("baseline explores");

    // Checkpoint roughly five times across the run, keeping every snapshot.
    let path = checkpoint_path(&name);
    let cadence = (baseline.1.configs as u64 / 5).max(1);
    let checkpointed = Explorer::new()
        .limits(ExploreLimits {
            checkpoint_every: Some(cadence),
            ..limits
        })
        .checkpoint_to(&path)
        .retain_checkpoints(true)
        .explore_stats(protocol, inputs)
        .expect("checkpointed run explores");
    assert_eq!(
        checkpointed, baseline,
        "{name}: snapshotting perturbed the exploration"
    );
    assert!(
        checkpointed.1.checkpoint_bytes > 0,
        "{name}: no checkpoint bytes recorded"
    );

    let ten_percent = (baseline.1.peak_resident_bytes / 10).max(1);
    let mut retained = 0usize;
    loop {
        let numbered = PathBuf::from(format!("{}.ck{retained}", path.display()));
        if !numbered.exists() {
            break;
        }
        let snap = Snapshot::read(&numbered).expect("retained snapshot decodes");
        assert!(
            snap.configs() as u64 >= (retained as u64 + 1) * cadence,
            "{name}: snapshot {retained} taken before its cadence threshold"
        );
        for workers in [1usize, 4] {
            for budget in [None, Some(ten_percent)] {
                let resumed = Explorer::new()
                    .workers(workers)
                    .limits(ExploreLimits {
                        memory_budget: budget,
                        ..limits
                    })
                    .resume_stats(protocol, inputs, &snap)
                    .expect("resume explores");
                assert_eq!(
                    resumed, baseline,
                    "{name}: resume from snapshot {retained} at {workers} workers, \
                     budget {budget:?} diverged"
                );
            }
        }
        std::fs::remove_file(&numbered).expect("cleanup");
        retained += 1;
    }
    std::fs::remove_file(&path).expect("final checkpoint exists");
    assert!(
        retained >= 2,
        "{name}: only {retained} checkpoints retained — the matrix needs \
         several kill points to mean anything"
    );
}

#[test]
fn tas_reset_resumes_bit_identically_from_every_checkpoint() {
    run_matrix(&tas_reset_consensus(3), &[0, 1, 2]);
}

#[test]
fn write01_resumes_bit_identically_from_every_checkpoint() {
    run_matrix(&write01_consensus(3), &[0, 1, 2]);
}

/// The checkpoint file a finished run leaves behind resumes to the same
/// result instantly — the committer has nothing left to do — and
/// `explore_resumable` picks it up transparently.
#[test]
fn resuming_a_finished_run_is_an_identity_operation() {
    let protocol = tas_reset_consensus(3);
    let inputs = [0u64, 1, 2];
    let limits = matrix_limits();
    let path = checkpoint_path("finished");
    let explorer = Explorer::new()
        .limits(ExploreLimits {
            checkpoint_every: Some(64),
            ..limits
        })
        .checkpoint_to(&path);
    let first = explorer
        .explore_resumable(&protocol, &inputs)
        .expect("fresh resumable run explores");
    let baseline = Explorer::new()
        .limits(limits)
        .explore_stats(&protocol, &inputs)
        .expect("baseline explores");
    assert_eq!(first, baseline, "fresh resumable run diverged");
    // Second call finds the last snapshot on disk and finishes from there.
    let second = explorer
        .explore_resumable(&protocol, &inputs)
        .expect("resumed run explores");
    assert_eq!(second, baseline, "resumed run diverged");
    std::fs::remove_file(&path).expect("checkpoint exists");
}
