//! The cross-crate correctness matrix: every protocol in the repository,
//! exercised through the public facade under several adversaries, with its
//! Table 1 space bound asserted — and every row cross-checked through the
//! frontier `Explorer` with symmetry reduction on/off and 1 vs 4 workers,
//! asserting bit-identical verdicts.

use space_hierarchy::model::Protocol;
use space_hierarchy::protocols::bitwise::{
    increment_log_consensus, tas_reset_consensus, write01_consensus,
};
use space_hierarchy::protocols::buffer::buffer_consensus;
use space_hierarchy::protocols::cas::CasConsensus;
use space_hierarchy::protocols::counter::{
    AddCounterFamily, AddFlavor, MultiplyCounterFamily, MultiplyFlavor, SetBitCounterFamily,
};
use space_hierarchy::protocols::hetero::hetero_consensus;
use space_hierarchy::protocols::increment::IncrementFlavor;
use space_hierarchy::protocols::intro::{DecMulConsensus, FaaTasConsensus};
use space_hierarchy::protocols::maxreg::MaxRegConsensus;
use space_hierarchy::protocols::racing::RacingConsensus;
use space_hierarchy::protocols::registers::register_consensus;
use space_hierarchy::protocols::swap::SwapConsensus;
use space_hierarchy::protocols::tracks::track_consensus;
use space_hierarchy::protocols::util::BitWrite;
use space_hierarchy::sim::{
    adversarial_then_solo, ObstructionScheduler, RandomScheduler, RoundRobinScheduler, Scheduler,
};
use space_hierarchy::verify::checker::{ExploreLimits, Explorer};

/// Runs `protocol` under a scheduler and asserts consensus correctness;
/// returns the worst-case locations touched.
fn run_checked<P: Protocol>(
    protocol: &P,
    inputs: &[u64],
    scheduler: impl Scheduler,
    steps: u64,
) -> usize {
    let report = adversarial_then_solo(protocol, inputs, scheduler, steps, 50_000_000)
        .unwrap_or_else(|e| panic!("{}: {e}", protocol.name()));
    report
        .check(inputs)
        .unwrap_or_else(|v| panic!("{}: {v}", protocol.name()));
    assert!(
        report.unanimous().is_some(),
        "{}: everyone decides",
        protocol.name()
    );
    report.locations_touched
}

/// Cross-checks the row through the frontier `Explorer`: symmetry reduction
/// on and off, 1 vs 4 workers. Within a symmetry mode the entire outcome
/// (verdict, configuration count, completeness) must be bit-identical across
/// worker counts; across modes the verdict must match. The horizon is kept
/// shallow so the whole matrix stays fast in debug builds — divergence
/// hunting at depth is the conformance fuzzer's job.
fn explorer_cross_check<P>(protocol: &P, inputs: &[u64])
where
    P: Protocol,
    P::Proc: Send + Sync,
{
    let limits = ExploreLimits {
        depth: 5,
        max_configs: 30_000,
        solo_check_budget: None,
        memory_budget: None,
        checkpoint_every: None,
    };
    let run = |symmetry: bool, workers: usize| {
        Explorer::new()
            .limits(limits)
            .workers(workers)
            .symmetry_reduction(symmetry)
            .explore(protocol, inputs)
            .unwrap_or_else(|e| panic!("{}: {e}", protocol.name()))
    };
    let plain = run(false, 1);
    // A protocol regression must surface here, on the unreduced engine,
    // before any cross-mode comparison: the reduction below is sound only
    // for anonymous rows (a pid-aware row's quotient may merge genuinely
    // distinct states and hide a violation the plain run would report).
    assert!(plain.is_clean(), "{}: {plain:?}", protocol.name());
    assert_eq!(plain, run(false, 4), "{}: workers, plain", protocol.name());
    let reduced = run(true, 1);
    assert_eq!(reduced, run(true, 4), "{}: workers, reduced", protocol.name());
    assert!(
        reduced.is_clean(),
        "{}: clean plain space but reduced verdict {reduced:?}",
        protocol.name()
    );
}

fn matrix<P>(protocol: &P, inputs: &[u64], expect_space: Option<usize>)
where
    P: Protocol,
    P::Proc: Send + Sync,
{
    explorer_cross_check(protocol, inputs);
    let steps = 3_000 * inputs.len() as u64;
    let mut worst = 0;
    for seed in 0..4 {
        worst = worst.max(run_checked(
            protocol,
            inputs,
            RandomScheduler::seeded(seed),
            steps,
        ));
    }
    worst = worst.max(run_checked(
        protocol,
        inputs,
        RoundRobinScheduler::new(),
        steps,
    ));
    worst = worst.max(run_checked(
        protocol,
        inputs,
        ObstructionScheduler::seeded(9, 12),
        steps,
    ));
    if let Some(space) = expect_space {
        assert_eq!(worst, space, "{}: Table 1 space", protocol.name());
    }
}

#[test]
fn cas_one_location() {
    matrix(&CasConsensus::new(5), &[4, 1, 1, 0, 2], Some(1));
}

#[test]
fn intro_examples_one_location() {
    matrix(&FaaTasConsensus::new(5), &[0, 1, 1, 0, 1], Some(1));
    matrix(&DecMulConsensus::new(5), &[1, 0, 0, 1, 0], Some(1));
}

#[test]
fn theorem_3_3_one_location_counters() {
    let n = 4;
    let inputs = [3, 0, 2, 2];
    matrix(
        &RacingConsensus::new(MultiplyCounterFamily::new(n, MultiplyFlavor::ReadMultiply), n),
        &inputs,
        Some(1),
    );
    matrix(
        &RacingConsensus::new(
            MultiplyCounterFamily::new(n, MultiplyFlavor::FetchAndMultiply),
            n,
        ),
        &inputs,
        Some(1),
    );
    matrix(
        &RacingConsensus::new(AddCounterFamily::new(n, n, AddFlavor::ReadAdd), n),
        &inputs,
        Some(1),
    );
    matrix(
        &RacingConsensus::new(AddCounterFamily::new(n, n, AddFlavor::FetchAndAdd), n),
        &inputs,
        Some(1),
    );
    matrix(
        &RacingConsensus::new(SetBitCounterFamily::new(n, n), n),
        &inputs,
        Some(1),
    );
}

#[test]
fn theorem_4_2_two_max_registers() {
    matrix(&MaxRegConsensus::new(6), &[5, 0, 3, 3, 1, 2], Some(2));
}

#[test]
fn theorem_5_3_log_locations() {
    let p = increment_log_consensus(6, IncrementFlavor::Increment);
    let cap = p.total_locations();
    matrix(&p, &[5, 5, 0, 2, 1, 3], None);
    assert_eq!(cap, 10, "(2+2)·⌈log₂ 6⌉ − 2");
    let p = increment_log_consensus(6, IncrementFlavor::FetchAndIncrement);
    matrix(&p, &[5, 5, 0, 2, 1, 3], None);
}

#[test]
fn theorem_6_3_buffers() {
    matrix(&buffer_consensus(6, 2), &[5, 0, 3, 3, 1, 2], Some(3));
    matrix(&buffer_consensus(6, 3), &[5, 0, 3, 3, 1, 2], Some(2));
    matrix(&buffer_consensus(6, 6), &[5, 0, 3, 3, 1, 2], Some(1));
}

#[test]
fn heterogeneous_buffers() {
    matrix(&hetero_consensus(5, vec![3, 2]), &[4, 0, 2, 2, 4], Some(2));
    matrix(
        &hetero_consensus(5, vec![2, 1, 1, 1]),
        &[4, 0, 2, 2, 4],
        Some(4),
    );
}

#[test]
fn algorithm_1_swap_n_minus_one() {
    matrix(&SwapConsensus::new(5), &[4, 0, 2, 2, 1], Some(4));
}

#[test]
fn theorem_9_3_tracks() {
    // Unbounded memory: no fixed space to assert, correctness only.
    matrix(&track_consensus(4, BitWrite::Write1), &[3, 0, 2, 2], None);
    matrix(&track_consensus(4, BitWrite::TestAndSet), &[3, 0, 2, 2], None);
}

#[test]
fn theorem_9_4_binary_location_constructions() {
    let p = write01_consensus(5);
    matrix(&p, &[4, 4, 0, 2, 1], None);
    let p = tas_reset_consensus(5);
    matrix(&p, &[4, 4, 0, 2, 1], None);
}

#[test]
fn register_row_exactly_n() {
    matrix(&register_consensus(5), &[4, 0, 2, 2, 1], Some(5));
}

#[test]
fn unanimity_across_the_whole_stack() {
    // Every protocol must decide v when everyone proposes v.
    let n = 4;
    for v in 0..n as u64 {
        let inputs = vec![v; n];
        let report = adversarial_then_solo(
            &SwapConsensus::new(n),
            &inputs,
            RandomScheduler::seeded(v),
            5_000,
            50_000_000,
        )
        .unwrap();
        assert_eq!(report.unanimous(), Some(v));
        let report = adversarial_then_solo(
            &MaxRegConsensus::new(n),
            &inputs,
            RandomScheduler::seeded(v),
            5_000,
            50_000_000,
        )
        .unwrap();
        assert_eq!(report.unanimous(), Some(v));
        let report = adversarial_then_solo(
            &buffer_consensus(n, 2),
            &inputs,
            RandomScheduler::seeded(v),
            5_000,
            50_000_000,
        )
        .unwrap();
        assert_eq!(report.unanimous(), Some(v));
    }
}
