//! Packed ↔ `Machine` round-trip conformance, across every registry row.
//!
//! The packed execution core reimplements step application on a flat
//! encoding; this suite pins it to the machine semantics it mirrors. For
//! every Table-1 registry row, a random schedule is replayed twice — once
//! through [`Machine::step`], once through [`PackedCtx::step`] on the packed
//! form — and after every step the two must agree on:
//!
//! - the 128-bit semantic fingerprint (via [`Machine::from_packed`]),
//! - the per-process decisions,
//! - `locations_touched` (Table 1's space measure) and allocation length,
//! - the step outcome itself (result value / recorded decision).
//!
//! The walk also checks the read-only digest preview against the digests of
//! materialised successors, and finally unwinds every packed step through
//! [`PackedCtx::undo`], which must land bit-exactly on the packed root.

use proptest::prelude::*;
use space_hierarchy::model::{
    PackedStepOutcome, PackedUndo, Protocol,
};
use space_hierarchy::protocols::registry::{self, RowSpec, RowVisitor};
use space_hierarchy::sim::{Machine, StepOutcome};

/// Replays `script` through both representations and cross-checks them.
struct LockstepWalk<'s> {
    script: &'s [usize],
    input_seed: u64,
    checked_steps: usize,
}

impl RowVisitor for LockstepWalk<'_> {
    type Output = Result<(), TestCaseError>;

    fn visit<P>(&mut self, _spec: &RowSpec, protocol: P) -> Self::Output
    where
        P: Protocol,
        P::Proc: Send + Sync,
    {
        let n = protocol.n();
        let inputs: Vec<u64> = (0..n)
            .map(|pid| (self.input_seed >> (7 * pid)) % protocol.domain())
            .collect();
        let mut machine = Machine::start(&protocol, &inputs).unwrap();
        let ctx = machine.packed_ctx();
        let mut packed = machine.pack(&ctx);
        let root = packed.clone();
        let root_digest = ctx.digest(&packed, false);
        let mut undos: Vec<PackedUndo> = Vec::new();

        for &cmd in self.script {
            let pid = cmd % n;
            if machine.decision(pid).is_some() {
                prop_assert_eq!(ctx.decision(&packed, pid), machine.decision(pid));
                continue;
            }
            // Read-only preview must equal the digest of the materialised
            // successor and must leave the state untouched.
            let before = ctx.digest(&packed, false);
            let preview = ctx.edge_digest(&packed, pid, before, false).unwrap();
            let machine_outcome = machine.step(pid).unwrap();
            let (packed_outcome, undo) = ctx.step(&mut packed, pid).unwrap();
            undos.push(undo);
            match (&machine_outcome, &packed_outcome) {
                (StepOutcome::Invoked { result, .. }, PackedStepOutcome::Invoked(r)) => {
                    prop_assert_eq!(result, r);
                }
                (StepOutcome::AlreadyDecided(a), PackedStepOutcome::AlreadyDecided(b)) => {
                    prop_assert_eq!(a, b);
                }
                other => {
                    return Err(TestCaseError::fail(format!(
                        "outcome kinds diverged: {other:?}"
                    )))
                }
            }
            prop_assert_eq!(preview, ctx.digest(&packed, false));
            // Full unpack: the semantic configuration is identical.
            let view = Machine::from_packed(&ctx, &packed);
            prop_assert_eq!(view.fingerprint(), machine.fingerprint());
            prop_assert_eq!(view.fingerprint_symmetric(), machine.fingerprint_symmetric());
            prop_assert_eq!(packed.touched(), machine.memory().touched());
            prop_assert_eq!(packed.cells_len(), machine.memory().len());
            prop_assert_eq!(packed.steps(), machine.steps());
            for p in 0..n {
                prop_assert_eq!(ctx.decision(&packed, p), machine.decision(p));
            }
            self.checked_steps += 1;
        }

        // Unwind every packed step: the root must reappear bit-exactly.
        while let Some(undo) = undos.pop() {
            ctx.undo(&mut packed, undo);
        }
        prop_assert_eq!(&packed, &root);
        prop_assert_eq!(ctx.digest(&packed, false), root_digest);
        Ok(())
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn packed_step_matches_machine_step_on_every_registry_row(
        script in proptest::collection::vec(0usize..64, 1..48),
        input_seed in 0u64..u64::MAX,
    ) {
        let mut total_checked = 0usize;
        for row in registry::all_rows() {
            let mut walk = LockstepWalk {
                script: &script,
                input_seed,
                checked_steps: 0,
            };
            registry::visit_row(row.id, 3, &mut walk).expect("registered row")?;
            total_checked += walk.checked_steps;
        }
        // The scripts are long enough that the walk really exercises steps.
        prop_assert!(total_checked > 0);
    }
}

/// Non-random pin: all 20 rows are present and the lockstep walk visits
/// every one of them (the proptest above would silently shrink coverage if
/// the registry lookup ever started failing).
#[test]
fn lockstep_walk_covers_all_rows() {
    let rows = registry::all_rows();
    assert_eq!(rows.len(), 20, "registry row count changed; update the suite");
    let script: Vec<usize> = (0..24).collect();
    for row in &rows {
        let mut walk = LockstepWalk {
            script: &script,
            input_seed: 0x5eed,
            checked_steps: 0,
        };
        registry::visit_row(row.id, row.min_n.max(3), &mut walk)
            .expect("registered row")
            .expect("lockstep walk clean");
        assert!(walk.checked_steps > 0, "row {} never stepped", row.id);
    }
}
