//! Tier-1 bit-identity matrix for the distributed sharded explorer.
//!
//! `explore_sharded` must reproduce the clone-based reference BFS — outcome,
//! counterexample schedule and semantic stats — at every point of the
//! `shards {1, 2, 4} × workers {1, 4} × memory budget {unbounded, ~10% of
//! the single-process peak}` matrix, on clean protocols, violating strawmen
//! (whose schedules must replay verbatim), config-capped runs and shallow
//! horizons. The per-shard budget column forces every shard through the
//! spill, disk-run and interner-eviction paths while the never-spilling
//! reference still dictates the exact answer.

use space_hierarchy::protocols::cas::CasConsensus;
use space_hierarchy::protocols::maxreg::MaxRegConsensus;
use space_hierarchy::verify::checker::{explore_stats, ExploreLimits, ExploreOutcome};
use space_hierarchy::verify::dist::{explore_sharded, DistConfig};
use space_hierarchy::verify::reference::reference_explore;
use space_hierarchy::verify::strawmen::{OneMaxRegister, OneRegister};
use space_hierarchy::model::Protocol;

/// Diffs `explore_sharded` against the reference BFS over the whole
/// shard/worker matrix, at the given budget.
fn agree_at<P: Protocol>(
    protocol: &P,
    inputs: &[u64],
    limits: ExploreLimits,
    what: &str,
) -> ExploreOutcome
where
    P::Proc: Send + Sync,
{
    let oracle = reference_explore(protocol, inputs, limits).unwrap();
    for shards in [1usize, 2, 4] {
        for workers in [1usize, 4] {
            let cfg = DistConfig {
                shards,
                workers,
                symmetric: false,
            };
            let dist = explore_sharded(protocol, inputs, limits, cfg).unwrap();
            assert_eq!(
                dist, oracle,
                "{what}: diverged at {shards} shards x {workers} workers \
                 (budget {:?})",
                limits.memory_budget
            );
        }
    }
    oracle.0
}

/// Runs the matrix unbounded, then again with every shard squeezed to ~10%
/// of the single-process engine's peak resident footprint.
fn agree<P: Protocol>(protocol: &P, inputs: &[u64], limits: ExploreLimits) -> ExploreOutcome
where
    P::Proc: Send + Sync,
{
    let outcome = agree_at(protocol, inputs, limits, "unbounded");
    let (_, stats) = explore_stats(protocol, inputs, limits).unwrap();
    let squeezed = ExploreLimits {
        memory_budget: Some(stats.peak_resident_bytes / 10),
        ..limits
    };
    agree_at(protocol, inputs, squeezed, "10% budget");
    outcome
}

#[test]
fn sharded_matrix_is_bit_identical_on_clean_protocols() {
    let outcome = agree(
        &MaxRegConsensus::new(3),
        &[0, 1, 2],
        ExploreLimits {
            depth: 10,
            max_configs: 100_000,
            solo_check_budget: None,
            memory_budget: None,
            checkpoint_every: None,
        },
    );
    assert!(outcome.is_clean(), "{outcome:?}");
}

#[test]
fn sharded_matrix_is_bit_identical_with_solo_checks() {
    let outcome = agree(
        &CasConsensus::new(3),
        &[0, 1, 2],
        ExploreLimits {
            depth: 9,
            max_configs: 100_000,
            solo_check_budget: Some(10),
            memory_budget: None,
            checkpoint_every: None,
        },
    );
    assert!(outcome.is_clean(), "{outcome:?}");
}

#[test]
fn sharded_matrix_reproduces_counterexample_schedules() {
    // The violating strawmen: the exact 1-minimal witness schedule — not
    // just the verdict — must survive sharding, because admission order is
    // what the coordinator's merge sweep replays.
    let a = agree(&OneMaxRegister::new(), &[0, 1], ExploreLimits::default());
    assert!(
        matches!(a, ExploreOutcome::AgreementViolation { .. }),
        "{a:?}"
    );
    let b = agree(&OneRegister::new(3), &[0, 1, 1], ExploreLimits::default());
    assert!(b.schedule().is_some(), "{b:?}");
}

#[test]
fn sharded_matrix_is_bit_identical_under_config_caps() {
    for cap in [1, 2, 7, 50, 400] {
        agree(
            &MaxRegConsensus::new(2),
            &[1, 0],
            ExploreLimits {
                depth: 12,
                max_configs: cap,
                solo_check_budget: None,
                memory_budget: None,
                checkpoint_every: None,
            },
        );
    }
}

#[test]
fn sharded_matrix_is_bit_identical_at_shallow_horizons() {
    for depth in 0..6 {
        agree(
            &MaxRegConsensus::new(3),
            &[0, 1, 2],
            ExploreLimits {
                depth,
                max_configs: 100_000,
                solo_check_budget: None,
                memory_budget: None,
                checkpoint_every: None,
            },
        );
    }
}
