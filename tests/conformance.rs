//! Tier-1 conformance suite: the differential backend oracle.
//!
//! Every Table-1 protocol family is fuzzed through (at least) the frontier
//! explorer, the clone-based reference BFS, the parallel and
//! symmetry-reduced explorers, three sequential schedulers and the bounded
//! real-thread runtime; verdicts, decision vectors, space usage and
//! reachable-configuration counts are diffed wherever comparable. A
//! test-only faulty backend proves divergences are *caught* and shrunk to
//! 1-minimal `ScriptedScheduler` reproducers.
//!
//! Budget knobs (plain integers, all optional):
//! - `CONFORMANCE_SCENARIOS` — scenario count (default 40 = two laps over
//!   the registry; clamped up to one full lap so the coverage assertions
//!   below stay meaningful);
//! - `CONFORMANCE_SEED` — master seed (default from
//!   `ConformanceConfig::default`);
//! - `CONFORMANCE_WORKERS` — fan-out worker count diffed against the
//!   sequential engine (default 4; CI sweeps 1 and 8 too);
//! - `CONFORMANCE_SYM` — `0` disables the symmetry-reduced backends (the
//!   other axis of CI's matrix);
//! - `CONFORMANCE_MEM_BUDGET` — frontier memory budget in bytes for the
//!   exhaustive backends (unset = unbounded; CI's tiny-budget columns pin it
//!   to 0 and 4096 so every scenario crosses the spill paths while the
//!   never-spilling reference BFS still demands bit-identical results);
//! - `CONFORMANCE_RESUME` — `1` adds the checkpoint/resume backend: every
//!   scenario is re-run with snapshots retained and resumed from each one,
//!   diffing against the scenario's exhaustive baseline;
//! - `CONFORMANCE_SHARDS` — base shard count for the distributed backend
//!   (default 0 = off; CI's column pins 2): every scenario additionally runs
//!   `explore_sharded` at this count *and* its double, diffed bit for bit
//!   against the sequential engine;
//! - `CONFORMANCE_TRACE` — `1` adds the trace capture & replay backend
//!   (CI's trace column): every scenario runs on real threads with the
//!   compact event log enabled, and the captured linearization replayed
//!   through the deterministic model must reproduce the physical run's
//!   report bit for bit, with divergences ddmin-shrunk.
//!
//! Every run is a pure function of these.

use proptest::prelude::*;
use space_hierarchy::conformance::{
    faulty::fault_diverges,
    run_suite,
    trace::{trace_decision_divergence, trace_divergence},
    ConformanceConfig, Scenario, ScenarioGen,
};
use space_hierarchy::model::{Protocol, Schedule};
use space_hierarchy::protocols::maxreg::MaxRegConsensus;
use space_hierarchy::protocols::registry::{self, RowSpec, RowVisitor};
use space_hierarchy::protocols::swap::SwapConsensus;
use space_hierarchy::sim::{replay_schedule, Machine, StepUndo};
use space_hierarchy::sync::run_threaded_traced;
use space_hierarchy::verify::checker::{
    explore, zobrist_fingerprint, zobrist_step, ExploreLimits, ExploreOutcome,
};
use space_hierarchy::verify::strawmen::{OneMaxRegister, OneRegister};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn suite_config() -> ConformanceConfig {
    let defaults = ConformanceConfig::default();
    ConformanceConfig {
        master_seed: env_u64("CONFORMANCE_SEED", defaults.master_seed),
        // Never below one lap over the registry: scenarios are assigned to
        // rows round-robin, so one lap is what makes the row-coverage and
        // backend-coverage assertions below hold for any budget.
        scenarios: (env_u64("CONFORMANCE_SCENARIOS", defaults.scenarios as u64) as usize)
            .max(registry::all_rows().len()),
        explorer_workers: env_u64("CONFORMANCE_WORKERS", defaults.explorer_workers as u64)
            as usize,
        symmetry: env_u64("CONFORMANCE_SYM", 1) != 0,
        memory_budget: std::env::var("CONFORMANCE_MEM_BUDGET")
            .ok()
            .and_then(|v| v.parse::<usize>().ok()),
        resume: env_u64("CONFORMANCE_RESUME", 0) != 0,
        shards: env_u64("CONFORMANCE_SHARDS", 0) as usize,
        trace: env_u64("CONFORMANCE_TRACE", 0) != 0,
        ..defaults
    }
}

// ---------------------------------------------------------------------------
// The suite itself
// ---------------------------------------------------------------------------

#[test]
fn differential_suite_is_clean_and_covers_the_table() {
    let cfg = suite_config();
    let report = run_suite(&cfg);
    assert!(
        report.findings.is_empty(),
        "conformance divergences:\n{:#?}",
        report.findings
    );
    assert!(
        report.rows_covered.len() >= 10,
        "only {} Table-1 rows covered: {:?}",
        report.rows_covered.len(),
        report.rows_covered
    );
    let mut expected = vec![
        "explore",
        "reference-bfs",
        "scripted-replay",
        "round-robin",
        "random-sched",
        "threaded",
    ];
    if cfg.symmetry {
        expected.push("explorer-sym");
    }
    if cfg.resume {
        expected.push("explore-resume");
    }
    if cfg.trace {
        expected.push("threaded-trace");
    }
    if cfg.shards > 0 {
        expected.push(space_hierarchy::conformance::shard_backend_name(cfg.shards));
        expected.push(space_hierarchy::conformance::shard_backend_name(
            cfg.shards * 2,
        ));
    }
    // The fan-out backend's name tracks the worker matrix axis.
    expected.push(space_hierarchy::conformance::worker_backend_name(
        cfg.explorer_workers.max(1),
    ));
    for backend in expected {
        assert!(
            report.backends.contains(backend),
            "backend {backend} never ran; ran: {:?}",
            report.backends
        );
    }
    assert!(report.configs_explored > 0);
}

#[test]
fn suite_reports_are_a_pure_function_of_the_seed() {
    let cfg = ConformanceConfig {
        scenarios: 12,
        threaded: false,
        fault_injection: true,
        ..ConformanceConfig::default()
    };
    let a = run_suite(&cfg);
    let b = run_suite(&cfg);
    assert_eq!(a, b, "same seed must reproduce the identical report");
    let other = run_suite(&ConformanceConfig {
        master_seed: cfg.master_seed ^ 1,
        ..cfg
    });
    assert_ne!(
        a.findings, other.findings,
        "different seeds explore different scenarios (w.h.p.)"
    );
}

// ---------------------------------------------------------------------------
// Fault injection: divergences are caught and shrunk
// ---------------------------------------------------------------------------

/// Re-verifies one faulty-replay finding against the real protocol: the
/// reproducer diverges, is 1-minimal, and round-trips through the wire
/// format. Uses `fault_diverges` — the *same* predicate the oracle shrank
/// against — so the re-verification cannot drift from the shrinker.
struct VerifyFaultFinding {
    inputs: Vec<u64>,
    reproducer: Schedule,
}

impl RowVisitor for VerifyFaultFinding {
    type Output = ();

    fn visit<P>(&mut self, _spec: &RowSpec, protocol: P)
    where
        P: Protocol,
        P::Proc: Send + Sync,
    {
        // The shrunken reproducer still diverges...
        assert!(
            fault_diverges(&protocol, &self.inputs, &self.reproducer),
            "reproducer no longer diverges: {}",
            self.reproducer
        );
        // ...is 1-minimal: removing any single step kills the divergence...
        for i in 0..self.reproducer.len() {
            let mut candidate = self.reproducer.to_vec();
            candidate.remove(i);
            assert!(
                !fault_diverges(&protocol, &self.inputs, &candidate),
                "reproducer {} is not 1-minimal (step {i} is removable)",
                self.reproducer
            );
        }
        // ...and survives the wire format.
        let parsed: Schedule = self.reproducer.to_string().parse().unwrap();
        assert_eq!(parsed, self.reproducer);
    }
}

#[test]
fn injected_fault_is_caught_and_shrunk_to_minimal_reproducers() {
    let cfg = ConformanceConfig {
        scenarios: 60,
        threaded: false,
        fault_injection: true,
        ..ConformanceConfig::default()
    };
    let report = run_suite(&cfg);
    let faulty: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.backend == "faulty-replay")
        .collect();
    let honest: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.backend != "faulty-replay")
        .collect();
    assert!(
        honest.is_empty(),
        "real backends must stay conformant: {honest:#?}"
    );
    assert!(
        faulty.len() >= 3,
        "the fuzzer must catch the injected fault repeatedly, caught {} times",
        faulty.len()
    );
    for finding in &faulty {
        let reproducer = finding
            .reproducer
            .clone()
            .expect("faulty-replay findings carry a reproducer");
        // The adoption fault is honest on the empty schedule, so every
        // shrunken reproducer is a genuine (non-empty) contention pattern.
        assert!(
            !reproducer.is_empty(),
            "degenerate reproducer for {:?}",
            finding.scenario
        );
        let mut verify = VerifyFaultFinding {
            inputs: finding.inputs.clone(),
            reproducer,
        };
        registry::visit_row(finding.scenario.row, finding.scenario.n, &mut verify)
            .expect("finding cites a registered row");
    }
}

// ---------------------------------------------------------------------------
// Trace capture & replay: lockstep on every row, tampering caught and shrunk
// ---------------------------------------------------------------------------

/// Runs one registry row with capture enabled and checks both directions of
/// the trace oracle: a faithful capture replays in lockstep (no finding),
/// and a forged decision vector is contradicted by the trace's own replay,
/// with the divergence shrunk to a 1-minimal, wire-stable reproducer. Uses
/// `trace_decision_divergence` — the *same* predicate the oracle shrank
/// against — so the re-verification cannot drift from the shrinker.
struct VerifyTraceCapture {
    seed: u64,
}

impl RowVisitor for VerifyTraceCapture {
    type Output = ();

    fn visit<P>(&mut self, spec: &RowSpec, protocol: P)
    where
        P: Protocol,
        P::Proc: Send + Sync,
    {
        let inputs: Vec<u64> = (0..protocol.n())
            .map(|pid| (self.seed >> (8 * (pid % 8))) % protocol.domain())
            .collect();
        let outcome = run_threaded_traced(&protocol, &inputs, 200_000)
            .unwrap_or_else(|e| panic!("row {}: threaded run errored: {e}", spec.id));
        assert_eq!(
            trace_divergence(&protocol, &inputs, &outcome.trace, &outcome.report),
            None,
            "row {}: a faithful capture must replay in lockstep",
            spec.id
        );
        // Control experiment: forge the decisions the threads supposedly
        // reached; the replay of the genuine trace must contradict it.
        let Some(winner) = outcome.report.unanimous() else {
            return; // budget-stopped run: nothing to forge against
        };
        let imposter = (winner + 1) % protocol.domain();
        let mut forged = outcome.report.clone();
        forged.decisions = vec![Some(imposter); protocol.n()];
        let (detail, reproducer) =
            trace_divergence(&protocol, &inputs, &outcome.trace, &forged)
                .unwrap_or_else(|| panic!("row {}: forged decisions must diverge", spec.id));
        assert!(detail.contains("diverges"), "{detail}");
        let minimal = reproducer.expect("decision divergence carries a reproducer");
        assert!(
            trace_decision_divergence(&protocol, &inputs, &minimal, &forged.decisions),
            "row {}: shrunken reproducer no longer diverges: {minimal}",
            spec.id
        );
        // 1-minimal: removing any single step kills the divergence...
        for i in 0..minimal.len() {
            let mut candidate = minimal.to_vec();
            candidate.remove(i);
            assert!(
                !trace_decision_divergence(&protocol, &inputs, &candidate, &forged.decisions),
                "row {}: reproducer {minimal} is not 1-minimal (step {i} is removable)",
                spec.id
            );
        }
        // ...and the reproducer survives the wire format.
        let parsed: Schedule = minimal.to_string().parse().unwrap();
        assert_eq!(parsed, minimal);
    }
}

#[test]
fn captured_traces_replay_lockstep_and_tampering_is_caught() {
    for (i, row) in registry::all_rows().into_iter().enumerate() {
        let mut verify = VerifyTraceCapture {
            seed: 0x5EED_CB41_u64.wrapping_mul(i as u64 + 1),
        };
        registry::visit_row(row.id, row.min_n + (i % 2), &mut verify)
            .expect("registry row exists");
    }
}

// ---------------------------------------------------------------------------
// Satellite: counterexample schedules round-trip through ScriptedScheduler
// ---------------------------------------------------------------------------

fn counterexample_roundtrips<P: Protocol>(protocol: &P, inputs: &[u64]) {
    let out = explore(protocol, inputs, ExploreLimits::default()).unwrap();
    let ExploreOutcome::AgreementViolation {
        decisions,
        schedule,
    } = out
    else {
        panic!("strawman must yield an agreement violation, got {out:?}");
    };
    let wire = Schedule::new(schedule.iter().copied());
    // Wire format round-trip.
    let parsed: Schedule = wire.to_string().parse().unwrap();
    assert_eq!(parsed, wire);
    // Verbatim replay: every scheduled pid steps exactly once per entry (no
    // off-by-one between parent-link pids and scripted steps), and the
    // violating decision vector reappears.
    let report = replay_schedule(protocol, inputs, &parsed).unwrap();
    assert_eq!(
        report.steps,
        schedule.len() as u64,
        "schedule replayed step for step"
    );
    assert!(report.check(inputs).is_err(), "{report:?}");
    let decided: Vec<u64> = report.decisions.iter().flatten().copied().collect();
    assert!(
        decided.contains(&decisions.0) && decided.contains(&decisions.1),
        "replay reproduces the conflicting decisions {decisions:?}: {decided:?}"
    );
}

#[test]
fn counterexample_schedules_roundtrip_through_scripted_replay() {
    counterexample_roundtrips(&OneMaxRegister::new(), &[0, 1]);
    counterexample_roundtrips(&OneRegister::new(2), &[0, 1]);
    counterexample_roundtrips(&OneRegister::new(3), &[0, 1, 1]);
    counterexample_roundtrips(&OneRegister::new(3), &[1, 0, 0]);
}

// ---------------------------------------------------------------------------
// Satellite: incremental Zobrist fingerprints vs full re-hash
// ---------------------------------------------------------------------------

/// Random step/undo walk: after every command, the incrementally maintained
/// digest must equal a from-scratch re-hash; after full unwind, the machine
/// is the exact initial configuration again.
fn zobrist_walk<P: Protocol>(
    protocol: &P,
    inputs: &[u64],
    script: &[usize],
    symmetric: bool,
) -> Result<(), TestCaseError> {
    let mut machine = Machine::start(protocol, inputs).unwrap();
    let mut fp = zobrist_fingerprint(&machine, symmetric);
    let mut stack: Vec<(u128, StepUndo<P::Proc>)> = Vec::new();
    for &cmd in script {
        if cmd % 4 == 0 {
            if let Some((prev, token)) = stack.pop() {
                machine.undo_step(token);
                fp = prev;
            }
        } else {
            let pid = cmd % protocol.n();
            if machine.decision(pid).is_none() {
                let (next_fp, token) = zobrist_step(&mut machine, pid, fp, symmetric)
                    .map_err(|e| TestCaseError::fail(e.to_string()))?;
                stack.push((fp, token));
                fp = next_fp;
            }
        }
        // Incremental digest must never drift from the full re-hash.
        prop_assert_eq!(fp, zobrist_fingerprint(&machine, symmetric));
    }
    while let Some((prev, token)) = stack.pop() {
        machine.undo_step(token);
        fp = prev;
    }
    prop_assert_eq!(fp, zobrist_fingerprint(&machine, symmetric));
    let fresh = Machine::start(protocol, inputs).unwrap();
    prop_assert_eq!(machine.fingerprint(), fresh.fingerprint());
    prop_assert_eq!(machine.fingerprint_symmetric(), fresh.fingerprint_symmetric());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn zobrist_incremental_matches_full_rehash_maxreg(
        script in proptest::collection::vec(0usize..16, 0..60),
    ) {
        // Both digest modes, on a pid-aware-free protocol with rounds.
        zobrist_walk(&MaxRegConsensus::new(3), &[0, 1, 2], &script, false)?;
        zobrist_walk(&MaxRegConsensus::new(3), &[0, 1, 2], &script, true)?;
    }

    #[test]
    fn zobrist_incremental_matches_full_rehash_swap(
        script in proptest::collection::vec(0usize..16, 0..60),
    ) {
        zobrist_walk(&SwapConsensus::new(3), &[2, 0, 1], &script, false)?;
        zobrist_walk(&SwapConsensus::new(3), &[2, 0, 1], &script, true)?;
    }
}

// ---------------------------------------------------------------------------
// Satellite: the scenario stream itself is seed-stable
// ---------------------------------------------------------------------------

#[test]
fn scenario_stream_is_pinned_for_saved_seeds() {
    // Golden first scenario of master seed 0: shrunken reproducers are filed
    // as (seed, scenario index) pairs, so the stream is a stable interface —
    // like the RNG goldens, a failure here means restore the generator, not
    // update the constants.
    let first = ScenarioGen::new(0).next_scenario();
    assert_eq!(
        first,
        Scenario {
            index: 0,
            row: "cas",
            n: 3,
            input_seed: 487617019471545679,
            sched_seed: 17909611376780542444,
            depth: 5,
        }
    );
}
